/**
 * @file
 * ancd -- the hardened batch compilation service, as a command-line
 * driver.
 *
 * ancd streams a batch of DSL programs through svc::Service: each
 * request is canonicalized, keyed, served from the plan cache when
 * possible, and otherwise compiled under the request's step deadline
 * and the service's retry/degradation policy. Every request ends in
 * exactly one verdict (compiled / cached / degraded / shed /
 * deadline-exceeded) with structured diagnostics; a poisoned request
 * can never take down the batch. Translation validation is ON by
 * default: every fresh compilation is symbolically proven equivalent
 * to its source (for all parameter values) before it is cached or
 * served, and a tier that fails to prove is degraded away
 * (--no-validate opts out). Run `ancd --help` for the option
 * list; it is generated from the same option table the parser
 * dispatches on (kOptSpecs below).
 *
 * Batch file format (see svc::parseBatch): DSL programs separated by
 * `---` lines, optionally named by a `# id: NAME` comment line.
 *
 * Exit status:
 *   0  batch completed (individual request verdicts do not fail the
 *      batch -- that is the point of a hardened service; gate on the
 *      per-request results instead)
 *   1  user error (bad arguments, unreadable file)
 *   2  internal error (a service bug; please report)
 *
 * For testing the request-isolation guarantee end to end, the
 * environment variable ANCD_INJECT_FAULT=<n> arms the deterministic
 * fault injector to throw on the n-th checked arithmetic operation of
 * the batch (ANCD_INJECT_KIND=math selects MathError instead of
 * OverflowError).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ratmath/fault.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace {

using namespace anc;

struct Options
{
    std::string batch_file;
    /** SEED:CLUSTERS:REQUESTS synthetic workload instead of a file. */
    std::string generate;
    std::string results_file;
    std::string metrics_file;
    bool metrics_prom = false;
    std::string log_file;
    std::string journal_file;
    std::string replay_journal_file;
    bool quiet = false;
    svc::ServiceOptions svc;
};

/** How an option consumes a value. */
enum class Arg
{
    None,     //!< flag only
    Required, //!< --opt=VALUE or --opt VALUE
    Optional, //!< bare --opt or --opt=VALUE (never the next argv)
};

/**
 * One command-line option: the single source of truth for both the
 * parser and the --help text.
 */
struct OptSpec
{
    const char *name;
    Arg arg;
    const char *valueHint; //!< "N"; "" when Arg::None
    const char *help;
};

const OptSpec kOptSpecs[] = {
    {"--serve-batch", Arg::Required, "FILE",
     "serve the requests in FILE (same as a positional file argument)"},
    {"--generate", Arg::Required, "SEED:CLUSTERS:REQUESTS",
     "serve a synthetic clustered workload instead of a file (the "
     "bench_service stream)"},
    {"--cache-bytes", Arg::Required, "N",
     "plan-cache byte budget (default 4194304; 0 caches nothing)"},
    {"--deadline-steps", Arg::Required, "N",
     "per-request deterministic step budget (default 0 = none)"},
    {"--queue-limit", Arg::Required, "N",
     "admission control: shed requests beyond this queue depth "
     "(default 0 = no limit)"},
    {"--max-program-bytes", Arg::Required, "N",
     "admission control: shed sources larger than N bytes (default 0 "
     "= no limit)"},
    {"--retries", Arg::Required, "N",
     "transient-fault retries per request (default 2)"},
    {"--no-validate", Arg::None, "",
     "serve unvalidated plans: skip the translation validation that "
     "every fresh compilation otherwise gets (the symbolic proof "
     "covering all parameter values; on by default)"},
    {"--search", Arg::Optional, "BUDGET",
     "simulator-scored plan search on every fresh compilation: score "
     "up to BUDGET (default 24) legal alternatives on the service's "
     "machine model and serve a symbolically validated winner; every "
     "search knob is part of the plan key, so searched and unsearched "
     "plans never share a cache entry"},
    {"--machine", Arg::Required, "gp1000|ipsc860",
     "target machine model, part of every plan key (default gp1000)"},
    {"--results", Arg::Required, "FILE",
     "write per-request verdicts as a JSON array to FILE"},
    {"--metrics", Arg::Required, "FILE",
     "write the svc.* / svc.cache.* metrics snapshot to FILE"},
    {"--metrics-format", Arg::Required, "json|prom",
     "format for --metrics: json (default) or prom, the Prometheus "
     "text exposition (counters and cumulative pow2 histograms)"},
    {"--log", Arg::Required, "FILE",
     "write the structured request lifecycle log to FILE as JSON lines: "
     "one event per step (admit, parse, canonicalize, cache, compile, "
     "validate, retry, verdict), correlated by request id; sequence "
     "numbers instead of timestamps, so the log is as deterministic as "
     "the verdicts"},
    {"--journal", Arg::Required, "FILE",
     "write the plan cache's hit/miss/insert/evict journal to FILE in "
     "the durable checksummed format (the determinism witness; "
     "replayable with --replay-journal)"},
    {"--replay-journal", Arg::Required, "FILE",
     "crash recovery: replay a prior run's --journal FILE before "
     "serving, restoring cache counters and witness history (a torn "
     "final line is tolerated; corrupt lines are rejected and "
     "reported; a missing FILE means a fresh start)"},
    {"--quiet", Arg::None, "", "suppress the per-request verdict lines"},
    {"--help", Arg::None, "", "print this help and exit"},
};

/** The usage text, generated from kOptSpecs. */
std::string
usageText()
{
    std::string out = "usage: ancd [options] <batch.anb>\n\noptions:\n";
    for (const OptSpec &s : kOptSpecs) {
        std::string head = std::string("  ") + s.name;
        if (s.arg == Arg::Required)
            head += std::string(" ") + s.valueHint;
        else if (s.arg == Arg::Optional)
            head += std::string("[=") + s.valueHint + "]";
        out += head;
        const size_t indent = 24;
        out += head.size() < indent ? std::string(indent - head.size(), ' ')
                                    : "\n" + std::string(indent, ' ');
        std::string line;
        std::istringstream words(s.help);
        std::string w;
        while (words >> w) {
            if (!line.empty() && indent + line.size() + 1 + w.size() > 78) {
                out += line + "\n" + std::string(indent, ' ');
                line.clear();
            }
            if (!line.empty())
                line += " ";
            line += w;
        }
        out += line + "\n";
    }
    return out;
}

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "ancd: %s\n", msg);
    std::fprintf(stderr, "%s", usageText().c_str());
    std::exit(1);
}

const OptSpec *
findSpec(const std::string &name)
{
    for (const OptSpec &s : kOptSpecs)
        if (name == s.name)
            return &s;
    return nullptr;
}

uint64_t
parseCount(const std::string &name, const std::string &value)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty())
        usage((name + " needs an unsigned integer").c_str());
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.empty() || a[0] != '-') {
            if (!o.batch_file.empty())
                usage("multiple batch files");
            o.batch_file = a;
            continue;
        }
        size_t eq = a.find('=');
        std::string name = eq == std::string::npos ? a : a.substr(0, eq);
        bool has_inline = eq != std::string::npos;
        std::string value = has_inline ? a.substr(eq + 1) : "";
        const OptSpec *spec = findSpec(name);
        if (!spec)
            usage(("unknown option " + name).c_str());
        if (spec->arg == Arg::None && has_inline)
            usage((name + " takes no value").c_str());
        if (spec->arg == Arg::Required && !has_inline) {
            if (i + 1 >= argc)
                usage((name + " needs " + spec->valueHint).c_str());
            value = argv[++i];
        }

        if (name == "--help") {
            std::printf("%s", usageText().c_str());
            std::exit(0);
        } else if (name == "--serve-batch") {
            if (!o.batch_file.empty())
                usage("multiple batch files");
            o.batch_file = value;
        } else if (name == "--generate") {
            o.generate = value;
        } else if (name == "--cache-bytes") {
            o.svc.cacheBytes = size_t(parseCount(name, value));
        } else if (name == "--deadline-steps") {
            o.svc.deadlineSteps = parseCount(name, value);
        } else if (name == "--queue-limit") {
            o.svc.queueLimit = size_t(parseCount(name, value));
        } else if (name == "--max-program-bytes") {
            o.svc.maxProgramBytes = size_t(parseCount(name, value));
        } else if (name == "--retries") {
            o.svc.maxRetries = int(parseCount(name, value));
        } else if (name == "--no-validate") {
            o.svc.compile.base.validate = false;
        } else if (name == "--search") {
            o.svc.compile.base.search.enabled = true;
            if (!value.empty()) {
                uint64_t budget = parseCount(name, value);
                if (budget == 0)
                    usage("--search budget must be positive");
                o.svc.compile.base.search.budget = Int(budget);
            }
        } else if (name == "--machine") {
            if (value == "gp1000")
                o.svc.machine = numa::MachineParams::butterflyGP1000();
            else if (value == "ipsc860")
                o.svc.machine = numa::MachineParams::ipsc860();
            else
                usage("unknown machine");
        } else if (name == "--results") {
            o.results_file = value;
        } else if (name == "--metrics") {
            o.metrics_file = value;
        } else if (name == "--metrics-format") {
            if (value == "json")
                o.metrics_prom = false;
            else if (value == "prom")
                o.metrics_prom = true;
            else
                usage("--metrics-format needs json or prom");
        } else if (name == "--log") {
            o.log_file = value;
        } else if (name == "--journal") {
            o.journal_file = value;
        } else if (name == "--replay-journal") {
            o.replay_journal_file = value;
        } else if (name == "--quiet") {
            o.quiet = true;
        }
    }
    if (o.batch_file.empty() && o.generate.empty())
        usage("no batch file (and no --generate)");
    if (!o.batch_file.empty() && !o.generate.empty())
        usage("--generate conflicts with a batch file");
    return o;
}

/** Arm the deterministic fault injector from the environment (testing
 * hook for request isolation; see the file comment). */
void
armInjectorFromEnv()
{
    const char *n = std::getenv("ANCD_INJECT_FAULT");
    if (!n || !*n)
        return;
    const char *k = std::getenv("ANCD_INJECT_KIND");
    fault::armAt(std::strtoull(n, nullptr, 10),
                 k && std::strcmp(k, "math") == 0 ? fault::Kind::Math
                                                  : fault::Kind::Overflow);
}

std::vector<svc::BatchRequest>
loadBatch(const Options &o)
{
    if (!o.generate.empty()) {
        svc::WorkloadOptions w;
        unsigned long long seed = 0, clusters = 0, requests = 0;
        if (std::sscanf(o.generate.c_str(), "%llu:%llu:%llu", &seed,
                        &clusters, &requests) != 3 ||
            clusters == 0 || requests == 0)
            usage("--generate needs SEED:CLUSTERS:REQUESTS");
        w.seed = seed;
        w.clusters = size_t(clusters);
        w.requests = size_t(requests);
        return svc::clusteredWorkload(w);
    }
    std::ifstream in(o.batch_file);
    if (!in)
        throw UserError("cannot open '" + o.batch_file + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    return svc::parseBatch(buf.str());
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
    if (!out)
        throw UserError("cannot write '" + path + "'");
}

int
run(const Options &o)
{
    std::vector<svc::BatchRequest> batch = loadBatch(o);

    svc::EventLog log;
    svc::ServiceOptions sopts = o.svc;
    if (!o.log_file.empty())
        sopts.events = &log;
    svc::Service service(sopts);
    if (!o.replay_journal_file.empty()) {
        // Crash recovery: a missing file is a fresh start; anything
        // readable is replayed with per-line checksum verification.
        std::ifstream in(o.replay_journal_file);
        if (in) {
            std::stringstream buf;
            buf << in.rdbuf();
            svc::JournalReplay rep =
                service.restoreCacheJournal(buf.str());
            std::printf("journal replay: %zu events restored, %zu "
                        "corrupt lines rejected%s\n",
                        rep.events.size(), rep.corruptLines,
                        rep.truncatedTail
                            ? ", torn final line dropped"
                            : "");
        }
    }
    armInjectorFromEnv();
    std::vector<svc::Response> responses = service.runBatch(batch);
    fault::disarm();

    if (!o.quiet)
        for (const svc::Response &r : responses)
            std::printf("%-32s %-18s %-12s %-12s steps=%llu retries=%d\n",
                        r.id.c_str(), svc::verdictName(r.verdict),
                        r.tier.empty() ? "-" : r.tier.c_str(),
                        r.validated ? "validated" : "unvalidated",
                        static_cast<unsigned long long>(r.steps),
                        r.retries);

    const svc::PlanCache &cache = service.cache();
    std::printf("batch: %zu requests\n", responses.size());
    std::printf("verdicts: compiled %llu cached %llu degraded %llu "
                "shed %llu deadline-exceeded %llu\n",
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Compiled)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Cached)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Degraded)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Shed)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::DeadlineExceeded)));
    std::printf("validation: passed %llu failed %llu off %llu\n",
                static_cast<unsigned long long>(
                    service.validationsPassed()),
                static_cast<unsigned long long>(
                    service.validationsFailed()),
                static_cast<unsigned long long>(
                    service.validationsOff()));
    std::printf("cache: hits %llu misses %llu evictions %llu entries "
                "%zu bytes %zu\n",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.evictions()),
                cache.size(), cache.bytes());

    if (!o.results_file.empty()) {
        std::string out = "[";
        for (size_t i = 0; i < responses.size(); ++i)
            out += (i ? ",\n " : "\n ") + responses[i].renderJson();
        out += "\n]\n";
        writeFileOrDie(o.results_file, out);
    }
    if (!o.metrics_file.empty()) {
        obs::MetricsRegistry reg;
        service.fillMetrics(reg);
        writeFileOrDie(o.metrics_file, o.metrics_prom
                                           ? reg.renderExposition()
                                           : reg.renderJson());
    }
    if (!o.log_file.empty())
        writeFileOrDie(o.log_file, log.text());
    if (!o.journal_file.empty())
        writeFileOrDie(o.journal_file, cache.durableJournalText());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parseArgs(argc, argv));
    } catch (const UserError &e) {
        std::fprintf(stderr, "ancd: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "ancd: internal error: %s\n"
                     "ancd: this is a bug in the service; please report "
                     "it together with the batch input\n",
                     e.what());
        return 2;
    }
}
