#include "ratmath/matrix.h"

namespace anc {

RatMatrix
toRational(const IntMatrix &m)
{
    RatMatrix r(m.rows(), m.cols());
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            r(i, j) = Rational(m(i, j));
    return r;
}

RatVec
toRational(const IntVec &v)
{
    RatVec r(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        r[i] = Rational(v[i]);
    return r;
}

IntMatrix
toIntegral(const RatMatrix &m)
{
    IntMatrix r(m.rows(), m.cols());
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            r(i, j) = m(i, j).asInteger();
    return r;
}

Int
dot(const IntVec &a, const IntVec &b)
{
    if (a.size() != b.size())
        throw InternalError("dot: size mismatch");
    Int128 acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += Int128(a[i]) * Int128(b[i]);
    return narrow128(acc);
}

Rational
dot(const RatVec &a, const RatVec &b)
{
    if (a.size() != b.size())
        throw InternalError("dot: size mismatch");
    Rational acc;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

bool
isZero(const IntVec &v)
{
    for (Int x : v)
        if (x != 0)
            return false;
    return true;
}

int
leadingSign(const IntVec &v)
{
    for (Int x : v) {
        if (x > 0)
            return 1;
        if (x < 0)
            return -1;
    }
    return 0;
}

} // namespace anc
