#include "obs/comm_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.h"
#include "ratmath/error.h"

namespace anc::obs {

namespace {

/** acc + v in 128 bits; UserError on uint64 overflow (matrices sum
 * multiplicity-scaled cells, so totals can exceed 2^64 long before any
 * single cell does). */
uint64_t
addChecked(uint64_t acc, uint64_t v)
{
    unsigned __int128 t = (unsigned __int128)acc + v;
    if (t > (unsigned __int128)UINT64_MAX)
        throw UserError(
            "communication-matrix total overflows 2^64-1; inspect "
            "per-cell counts instead of grand totals");
    return (uint64_t)t;
}

} // namespace

uint64_t
CommMatrix::totalRemoteElements() const
{
    uint64_t n = 0;
    if (aggregated) {
        for (const Cell &c : cells)
            n = addChecked(n, c.remoteElements);
    } else {
        for (const Row &r : rows)
            for (const CommEdge &e : r.edges)
                n = addChecked(n, e.remoteElements);
    }
    return n;
}

uint64_t
CommMatrix::totalBlockTransfers() const
{
    uint64_t n = 0;
    if (aggregated) {
        for (const Cell &c : cells)
            n = addChecked(n, c.blockTransfers);
    } else {
        for (const Row &r : rows)
            for (const CommEdge &e : r.edges)
                n = addChecked(n, e.blockTransfers);
    }
    return n;
}

uint64_t
CommMatrix::totalBlockElements() const
{
    uint64_t n = 0;
    if (aggregated) {
        for (const Cell &c : cells)
            n = addChecked(n, c.blockElements);
    } else {
        for (const Row &r : rows)
            for (const CommEdge &e : r.edges)
                n = addChecked(n, e.blockElements);
    }
    return n;
}

std::vector<CommEdge>
CommMatrix::rowTotals() const
{
    std::vector<CommEdge> out;
    for (const Row &r : rows) {
        CommEdge sum;
        sum.owner = r.origin;
        for (const CommEdge &e : r.edges) {
            sum.remoteElements = addChecked(sum.remoteElements,
                                            e.remoteElements);
            sum.blockTransfers = addChecked(sum.blockTransfers,
                                            e.blockTransfers);
            sum.blockElements = addChecked(sum.blockElements,
                                           e.blockElements);
        }
        out.push_back(sum);
    }
    return out;
}

std::string
CommMatrix::renderJson() const
{
    std::ostringstream os;
    os << "{\"processors\":" << jsonNum(int64_t(processors))
       << ",\"aggregated\":" << (aggregated ? "true" : "false");
    if (aggregated) {
        os << ",\"classes\":[";
        for (size_t i = 0; i < classes.size(); ++i) {
            const ClassInfo &c = classes[i];
            if (i)
                os << ",";
            os << "{\"rep\":" << jsonNum(c.rep) << ",\"multiplicity\":"
               << jsonNum(c.multiplicity) << ",\"default\":"
               << (c.isDefault ? "true" : "false") << "}";
        }
        os << "],\"cells\":[";
        for (size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            if (i)
                os << ",";
            os << "{\"from\":" << jsonNum(c.from) << ",\"to\":"
               << jsonNum(c.to) << ",\"remoteElements\":"
               << jsonNum(c.remoteElements) << ",\"blockTransfers\":"
               << jsonNum(c.blockTransfers) << ",\"blockElements\":"
               << jsonNum(c.blockElements) << "}";
        }
        os << "]}";
    } else {
        os << ",\"rows\":[";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            if (i)
                os << ",";
            os << "{\"origin\":" << jsonNum(r.origin) << ",\"edges\":[";
            for (size_t j = 0; j < r.edges.size(); ++j) {
                const CommEdge &e = r.edges[j];
                if (j)
                    os << ",";
                os << "{\"owner\":" << jsonNum(e.owner)
                   << ",\"remoteElements\":" << jsonNum(e.remoteElements)
                   << ",\"blockTransfers\":" << jsonNum(e.blockTransfers)
                   << ",\"blockElements\":" << jsonNum(e.blockElements)
                   << "}";
            }
            os << "]}";
        }
        os << "]}";
    }
    return os.str();
}

std::string
CommMatrix::renderHeatmap(size_t max_cells) const
{
    if (max_cells == 0)
        max_cells = 1;
    // Grid side: one bucket per processor (direct) or per class
    // (aggregated), capped at max_cells buckets a side.
    const uint64_t span = aggregated ? uint64_t(classes.size())
                                     : uint64_t(processors);
    if (span == 0)
        return "comm matrix: empty\n";
    const size_t side = size_t(std::min<uint64_t>(span, max_cells));
    auto bucket = [&](uint64_t id) -> size_t {
        // id * side / span without overflow at P = 2^20.
        return size_t((unsigned __int128)id * side / span);
    };
    std::vector<double> grid(side * side, 0.0);
    auto deposit = [&](uint64_t from, uint64_t to, const uint64_t elems) {
        grid[bucket(from) * side + bucket(to)] += double(elems);
    };
    if (aggregated) {
        for (const Cell &c : cells)
            deposit(c.from, c.to,
                    addChecked(c.remoteElements, c.blockElements));
    } else {
        for (const Row &r : rows)
            for (const CommEdge &e : r.edges)
                deposit(uint64_t(r.origin), uint64_t(e.owner),
                        addChecked(e.remoteElements, e.blockElements));
    }
    double vmax = 0.0;
    for (double v : grid)
        vmax = std::max(vmax, v);

    static const char kGlyphs[] = " .:-=+*#%@";
    constexpr int kLevels = int(sizeof(kGlyphs)) - 2; // nonzero glyphs
    std::ostringstream os;
    os << "comm matrix P = " << processors;
    if (aggregated)
        os << " (" << classes.size() << " classes)";
    if (span > side)
        os << ", " << span << " " << (aggregated ? "classes" : "rows")
           << " bucketed to " << side;
    os << "; elements moved (remote + block), log scale\n";
    os << "  origin \\ owner";
    if (aggregated)
        os << "  [class-pair grid; legend below]";
    os << "\n";
    for (size_t i = 0; i < side; ++i) {
        std::ostringstream label;
        if (span > side)
            label << (uint64_t(i) * span / side) << "..";
        else if (aggregated)
            label << "c" << i;
        else
            label << i;
        os << "  ";
        std::string l = label.str();
        os << l << std::string(l.size() < 8 ? 8 - l.size() : 1, ' ')
           << "|";
        for (size_t j = 0; j < side; ++j) {
            double v = grid[i * side + j];
            char g = ' ';
            if (v > 0.0 && vmax > 0.0) {
                int lvl = 1 + int(std::log1p(v) / std::log1p(vmax) *
                                  (kLevels - 1));
                lvl = std::min(std::max(lvl, 1), kLevels);
                g = kGlyphs[lvl];
            }
            os << g;
        }
        os << "|\n";
    }
    os << "  scale: ' '=0";
    if (vmax > 0.0)
        os << "  '" << kGlyphs[1] << "'..'" << kGlyphs[kLevels]
           << "' log up to " << uint64_t(vmax) << " elements";
    os << "\n";
    if (aggregated) {
        constexpr size_t kMaxLegend = 16;
        for (size_t i = 0; i < classes.size() && i < kMaxLegend; ++i) {
            os << "  c" << i << ": rep " << classes[i].rep << " x"
               << classes[i].multiplicity
               << (classes[i].isDefault ? " (rest)" : "") << "\n";
        }
        if (classes.size() > kMaxLegend)
            os << "  ... " << (classes.size() - kMaxLegend)
               << " more classes\n";
    }
    return os.str();
}

} // namespace anc::obs
