file(REMOVE_RECURSE
  "libanc_xform.a"
)
