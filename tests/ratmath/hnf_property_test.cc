/**
 * @file
 * Deeper Hermite/Smith normal-form properties: canonical uniqueness of
 * the HNF as a lattice invariant, invariant factors as gcds of minors,
 * and determinant preservation.
 */

#include <gtest/gtest.h>

#include <random>

#include "ratmath/hnf.h"
#include "ratmath/linalg.h"
#include "ratmath/smith.h"
#include "test_util.h"

namespace anc {
namespace {

using testutil::randomInvertibleMatrix;
using testutil::randomUnimodularMatrix;

TEST(HnfCanonical, UniquePerLattice)
{
    // For square nonsingular A, the canonical column HNF is a lattice
    // invariant: H(A) == H(A * U) for every unimodular U.
    std::mt19937 rng(2026);
    for (int trial = 0; trial < 60; ++trial) {
        size_t n = 2 + trial % 3;
        IntMatrix a = randomInvertibleMatrix(rng, n, -4, 4);
        IntMatrix h1 = columnHNF(a).h;
        for (int q = 0; q < 3; ++q) {
            IntMatrix u = randomUnimodularMatrix(rng, n);
            IntMatrix h2 = columnHNF(a * u).h;
            EXPECT_EQ(h1, h2)
                << "HNF not canonical for\n" << a.str();
        }
    }
}

TEST(HnfCanonical, DiagonalProductIsAbsDeterminant)
{
    std::mt19937 rng(11);
    for (int trial = 0; trial < 60; ++trial) {
        size_t n = 1 + trial % 5;
        IntMatrix a = randomInvertibleMatrix(rng, n, -4, 4);
        IntMatrix h = columnHNF(a).h;
        Int prod = 1;
        for (size_t i = 0; i < n; ++i)
            prod = checkedMul(prod, h(i, i));
        Int d = determinant(a);
        EXPECT_EQ(prod, d < 0 ? -d : d);
    }
}

TEST(HnfCanonical, IdempotentOnOwnOutput)
{
    std::mt19937 rng(31);
    for (int trial = 0; trial < 40; ++trial) {
        size_t n = 2 + trial % 3;
        IntMatrix a = randomInvertibleMatrix(rng, n, -4, 4);
        IntMatrix h = columnHNF(a).h;
        EXPECT_EQ(columnHNF(h).h, h);
    }
}

/** gcd of all k x k minors of m (0 if all vanish). */
Int
minorGcd(const IntMatrix &m, size_t k)
{
    std::vector<size_t> rows(k), cols(k);
    Int g = 0;
    // Enumerate k-subsets of rows and columns (sizes here are tiny).
    std::function<void(size_t, size_t)> pick_cols = [&](size_t start,
                                                        size_t depth) {
        if (depth == k) {
            IntMatrix sub(k, k);
            for (size_t i = 0; i < k; ++i)
                for (size_t j = 0; j < k; ++j)
                    sub(i, j) = m(rows[i], cols[j]);
            Int d = determinant(sub);
            g = gcdInt(g, d);
            return;
        }
        for (size_t c = start; c < m.cols(); ++c) {
            cols[depth] = c;
            pick_cols(c + 1, depth + 1);
        }
    };
    std::function<void(size_t, size_t)> pick_rows = [&](size_t start,
                                                        size_t depth) {
        if (depth == k) {
            pick_cols(0, 0);
            return;
        }
        for (size_t r = start; r < m.rows(); ++r) {
            rows[depth] = r;
            pick_rows(r + 1, depth + 1);
        }
    };
    pick_rows(0, 0);
    return g;
}

TEST(SmithInvariants, ProductsAreMinorGcds)
{
    // d_1 * ... * d_k == gcd of all k x k minors -- the classical
    // characterization of the invariant factors.
    std::mt19937 rng(5150);
    for (int trial = 0; trial < 40; ++trial) {
        size_t m = 2 + trial % 2, n = 2 + (trial / 2) % 2;
        IntMatrix a = testutil::randomIntMatrix(rng, m, n, -4, 4);
        SmithForm f = smithForm(a);
        Int prod = 1;
        for (size_t k = 1; k <= std::min(m, n); ++k) {
            prod = checkedMul(prod, f.s(k - 1, k - 1));
            EXPECT_EQ(prod, minorGcd(a, k)) << "k=" << k << "\n"
                                            << a.str();
        }
    }
}

TEST(SmithInvariants, InvariantUnderUnimodularMultiplication)
{
    std::mt19937 rng(606);
    for (int trial = 0; trial < 30; ++trial) {
        IntMatrix a = testutil::randomIntMatrix(rng, 3, 3, -4, 4);
        IntMatrix u = randomUnimodularMatrix(rng, 3);
        IntMatrix v = randomUnimodularMatrix(rng, 3);
        EXPECT_EQ(smithForm(a).s, smithForm(u * a * v).s);
    }
}

TEST(HnfOverflowGuard, LargeEntriesEitherSucceedOrThrow)
{
    // Large entries: the exact pipeline either computes correctly
    // (verified via A*U == H) or raises OverflowError -- never wraps.
    // (The textbook HNF algorithm suffers coefficient explosion: the
    // unimodular companion's entries grow multiplicatively, so inputs
    // much beyond ~2^12 trip the checked arithmetic. Transformation
    // matrices in this domain have single-digit entries.)
    std::mt19937 rng(13);
    std::uniform_int_distribution<Int> big(-(Int(1) << 12),
                                           Int(1) << 12);
    int succeeded = 0;
    for (int trial = 0; trial < 30; ++trial) {
        IntMatrix a(3, 3);
        for (size_t i = 0; i < 3; ++i)
            for (size_t j = 0; j < 3; ++j)
                a(i, j) = big(rng);
        ColumnHNF c;
        try {
            c = columnHNF(a);
        } catch (const OverflowError &) {
            continue; // acceptable: checked arithmetic refused to wrap
        }
        ++succeeded;
        try {
            EXPECT_EQ(a * c.u, c.h);
        } catch (const OverflowError &) {
            // The verification product itself can overflow (entries of
            // U reach ~2^60); that says nothing about the HNF. Check
            // the cheap invariants instead.
            for (size_t i = 0; i < 3; ++i)
                EXPECT_GT(c.h(i, i), 0);
        }
    }
    EXPECT_GT(succeeded, 0);
}

} // namespace
} // namespace anc
