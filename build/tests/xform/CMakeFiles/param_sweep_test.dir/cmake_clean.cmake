file(REMOVE_RECURSE
  "CMakeFiles/param_sweep_test.dir/param_sweep_test.cc.o"
  "CMakeFiles/param_sweep_test.dir/param_sweep_test.cc.o.d"
  "param_sweep_test"
  "param_sweep_test.pdb"
  "param_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
