/**
 * @file
 * Exact rational numbers over checked 64-bit integers.
 *
 * Rationals are kept gcd-normalized with a strictly positive denominator.
 * Intermediate products use 128 bits; results that do not fit in 64 bits
 * after normalization raise OverflowError.
 */

#ifndef ANC_RATMATH_RATIONAL_H
#define ANC_RATMATH_RATIONAL_H

#include <iosfwd>
#include <string>

#include "ratmath/int_util.h"

namespace anc {

/**
 * An exact rational number num/den with den > 0 and gcd(num, den) == 1.
 */
class Rational
{
  public:
    /** Zero. */
    Rational() : num_(0), den_(1) {}

    /** Integer value n/1. */
    Rational(Int n) : num_(n), den_(1) {} // NOLINT: implicit by design

    /** Normalized fraction n/d; throws MathError if d == 0. */
    Rational(Int n, Int d);

    Int num() const { return num_; }
    Int den() const { return den_; }

    bool isZero() const { return num_ == 0; }
    bool isInteger() const { return den_ == 1; }
    bool isNegative() const { return num_ < 0; }
    bool isPositive() const { return num_ > 0; }

    /** Sign as -1, 0, or +1. */
    int sign() const { return num_ < 0 ? -1 : (num_ > 0 ? 1 : 0); }

    /** Integer value; throws InternalError if not an integer. */
    Int asInteger() const;

    /** Largest integer <= this. */
    Int floor() const { return floorDiv(num_, den_); }

    /** Smallest integer >= this. */
    Int ceil() const { return ceilDiv(num_, den_); }

    /** Absolute value. */
    Rational abs() const;

    /** Multiplicative inverse; throws MathError on zero. */
    Rational inverse() const;

    /** Closest double approximation (for reporting only). */
    double toDouble() const;

    /** Render as "a" or "a/b". */
    std::string str() const;

    Rational operator-() const;
    Rational operator+(const Rational &o) const;
    Rational operator-(const Rational &o) const;
    Rational operator*(const Rational &o) const;
    Rational operator/(const Rational &o) const;

    Rational &operator+=(const Rational &o) { return *this = *this + o; }
    Rational &operator-=(const Rational &o) { return *this = *this - o; }
    Rational &operator*=(const Rational &o) { return *this = *this * o; }
    Rational &operator/=(const Rational &o) { return *this = *this / o; }

    bool operator==(const Rational &o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }
    bool operator!=(const Rational &o) const { return !(*this == o); }
    bool operator<(const Rational &o) const;
    bool operator>(const Rational &o) const { return o < *this; }
    bool operator<=(const Rational &o) const { return !(o < *this); }
    bool operator>=(const Rational &o) const { return !(*this < o); }

  private:
    Int num_;
    Int den_; //!< always > 0

    /** Construct from 128-bit numerator/denominator, normalizing. */
    static Rational make128(Int128 n, Int128 d);
};

std::ostream &operator<<(std::ostream &os, const Rational &r);

} // namespace anc

#endif // ANC_RATMATH_RATIONAL_H
