/**
 * @file
 * Recursive-descent parser for the loop-nest language.
 *
 * Grammar (whitespace-insensitive, '#' comments):
 *
 *   program    := decl* for_line+ stmt+
 *   decl       := 'param' IDENT (',' IDENT)*
 *               | 'scalar' IDENT (',' IDENT)*
 *               | 'array' IDENT '(' affine (',' affine)* ')'
 *                 ['distribute' dist]
 *   dist       := 'replicated' | 'wrapped' '(' INT ')'
 *               | 'blocked' '(' INT ')' | 'block2d' '(' INT ',' INT ')'
 *   for_line   := 'for' IDENT '=' lowbound ',' highbound
 *   lowbound   := affine | 'max' '(' affine (',' affine)* ')'
 *   highbound  := affine | 'min' '(' affine (',' affine)* ')'
 *   stmt       := ref '=' expr
 *   ref        := IDENT '[' affine (',' affine)* ']'
 *   expr       := term (('+'|'-') term)*
 *   term       := factor (('*'|'/') factor)*
 *   factor     := FLOAT | INT | ref | IDENT | '(' expr ')' | '-' factor
 *   affine     := aterm (('+'|'-') aterm)*   (linear in loop variables
 *                 and parameters; '*' needs one constant operand,
 *                 '/' a constant divisor)
 *
 * In an expression, an identifier resolves to a loop variable or
 * parameter (yielding its integer value) or to a declared scalar.
 */

#ifndef ANC_DSL_PARSER_H
#define ANC_DSL_PARSER_H

#include <optional>
#include <string>
#include <vector>

#include "ir/loop_nest.h"

namespace anc::dsl {

/** Parse a whole program; throws UserError with line info on errors. */
ir::Program parseProgram(const std::string &source);

/** One recovered parse error. */
struct ParseDiagnostic
{
    int line = -1; //!< 1-based source line
    std::string message;
};

/** What error-recovering parsing produced. */
struct ParseResult
{
    /** The parsed program, present when the source (or what remained
     * of it after skipping malformed units) builds a valid program. */
    std::optional<ir::Program> program;
    /** All errors found, in source order. */
    std::vector<ParseDiagnostic> diagnostics;

    bool ok() const { return program.has_value() && diagnostics.empty(); }
};

/**
 * Parse with bounded error recovery: a malformed declaration, loop
 * header, or statement is reported and skipped (resynchronizing at the
 * next line that starts a new unit), so one pass reports multiple
 * independent errors instead of stopping at the first. Never throws
 * UserError for malformed source; collection stops after max_errors.
 */
ParseResult parseProgramRecovering(const std::string &source,
                                   size_t max_errors = 25);

} // namespace anc::dsl

#endif // ANC_DSL_PARSER_H
