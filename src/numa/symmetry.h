/**
 * @file
 * Symmetry-class aggregation for the NUMA simulator.
 *
 * Wrapped and blocked distributions make the simulator's per-processor
 * cost structure *periodic in the processor id*: the paper's
 * strength-reduced charging already exploits that per reference
 * (countCongruent, faultsInRange); this module generalizes it to whole
 * processors. Instead of walking all P outer slices, the simulator
 *
 *   1. analytically enumerates the processors whose outer slice is
 *      non-empty -- O(min(P, outer trip count)) of them, found without
 *      any O(P) loop (per-scheme closed forms over the outer lattice);
 *   2. collapses every remaining processor into one *default class*
 *      (identical all-zero stats, possibly plus one redistribution
 *      sync when a fail-stop kill is armed);
 *   3. where the plan's translation symmetry provably holds
 *      (checkTranslationMerge), merges the non-empty processors into
 *      at most two residue classes -- the ceil(n/Q) and floor(n/Q)
 *      trip-count groups of the wrapped round-robin assignment;
 *   4. keeps every processor whose behavior is *not* provably shared
 *      (kill victims, redistribution adopters, blocked-boundary
 *      processors) in a singleton class, so results stay exact.
 *
 * One representative per class is simulated through the unmodified
 * two-phase machinery and its ProcStats replicated analytically -- the
 * property tests assert bit-identical SimStats against direct
 * simulation for every kernel, scheme, fastInner/naive, fault spec and
 * host-thread combination at small P.
 */

#ifndef ANC_NUMA_SYMMETRY_H
#define ANC_NUMA_SYMMETRY_H

#include <functional>
#include <string>
#include <vector>

#include "ir/interp.h"
#include "numa/plan.h"
#include "numa/stats.h"
#include "xform/transform.h"

namespace anc::numa {

/** How the simulator decides whether to aggregate symmetry classes. */
enum class SymmetryMode
{
    Auto,  //!< aggregate above SimOptions::symmetryThreshold processors
    Off,   //!< always simulate every processor directly
    Force, //!< aggregate at any P (used by the equivalence tests)
};

/**
 * Everything the class planner needs to know about one run, scheme- and
 * kill-aware but independent of the simulator's compiled internals.
 * The outer loop's lattice values are outerStart + k*outerStep for
 * k in [0, outerCount).
 */
struct SymmetryInput
{
    Int processors = 1;
    PartitionScheme scheme = PartitionScheme::RoundRobin;
    bool outerEmpty = true;
    Int outerStart = 0;
    Int outerStep = 1;
    Int outerCount = 0;
    /** Aligned distribution geometry (owner schemes only). */
    Int blockSize = 1;  //!< level-0 block size (OwnerBlocked/Block2D)
    Int gridRows = 1, gridCols = 1;
    /** Translation merge proven sound (checkTranslationMerge). */
    bool mergeable = false;
    /** Fail-stop kill victim, or -1 when none is armed. */
    Int killVictim = -1;
    /** Exclusive upper bound on processor ids that may adopt a slice in
     * the kill redistribution phase (0 when no redistribution runs);
     * every processor below it becomes a singleton class. */
    Int killAdopterBound = 0;
    /** Give up (fall back to direct simulation) past this many
     * classes. */
    uint64_t maxClasses = uint64_t(1) << 16;
    /** Exact outer-slice trip count of one processor (0 when empty);
     * used to probe candidates and cross-check the closed forms. */
    std::function<Int(Int)> sliceCount;
};

/** The planned partition: explicit groups plus an optional default
 * class owning every processor not claimed by a group. */
struct SymmetryPlan
{
    bool usable = false;
    std::string reason; //!< why unusable, or a summary when usable

    struct Group
    {
        Int representative = 0;
        uint64_t multiplicity = 1;
        std::vector<ProcRange> members;
    };
    std::vector<Group> groups;

    bool hasDefault = false;
    Int defaultRep = -1;
    uint64_t defaultCount = 0;

    /** Total classes including the default one. */
    size_t
    classCount() const
    {
        return groups.size() + (hasDefault ? 1 : 0);
    }
};

/**
 * Decide whether every non-empty processor of this plan provably does
 * identical work up to trip count -- the translation symmetry of the
 * wrapped schemes. Sound conditions (conservative; returns false with
 * a reason otherwise):
 *
 *   - the scheme is RoundRobin or OwnerWrapped, so a processor's outer
 *     values share one residue rho(p) = (base + p*vstep) mod P;
 *   - no inner loop bound and no lattice anchor below level 0 depends
 *     on the outer variable, so all processors run the same inner
 *     spaces per position;
 *   - every referenced array is replicated or wrapped with
 *     alpha0 * vstep == 1 (mod P), where alpha0 is the subscript's
 *     outer-variable coefficient -- then every ownership residue test
 *     (p - subscript) mod P is processor-independent.
 *
 * Under these conditions message-fault event streams are identical per
 * class member too, so fault and recovery counters replicate exactly.
 * Fail-stop kills are handled by the planner (singletons), not here.
 */
struct MergeCheck
{
    bool mergeable = false;
    std::string reason;
};
MergeCheck checkTranslationMerge(const ir::Program &prog,
                                 const xform::TransformedNest &nest,
                                 const ExecutionPlan &plan, Int processors);

/**
 * Partition [0, P) into symmetry classes. Never wrong, sometimes
 * unusable: when the class structure cannot be bounded (more candidate
 * classes than in.maxClasses) the plan comes back !usable and the
 * caller falls back to direct simulation.
 */
SymmetryPlan planSymmetryClasses(const SymmetryInput &in);

} // namespace anc::numa

#endif // ANC_NUMA_SYMMETRY_H
