/**
 * @file
 * Section 2.1 baseline comparison: the ownership rule vs. access
 * normalization.
 *
 * Under the ownership rule every processor executes every iteration
 * "looking for work to do": guards are evaluated P times per iteration
 * and remote operands are fetched element-wise. Access normalization
 * instead restructures the nest so iterations can be assigned where
 * their data lives. The table reports parallel time, guard overhead,
 * and remote traffic for both strategies on GEMM and the Figure 1
 * example.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/emit_c.h"
#include "core/compiler.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

struct Workload
{
    const char *name;
    ir::Program prog;
    IntVec params;
    std::vector<double> scalars;
};

std::vector<Workload>
workloads()
{
    Int n = bench::envInt("ANC_BENCH_N", 48);
    std::vector<Workload> w;
    w.push_back({"gemm", ir::gallery::gemm(), {n}, {}});
    w.push_back({"figure1", ir::gallery::figure1(), {n, n / 2, 12}, {}});
    return w;
}

void
printTable()
{
    std::printf("=== Section 2.1: ownership rule vs. access "
                "normalization ===\n\n");
    std::printf("%-9s %3s %14s %14s %9s %12s %12s\n", "workload", "P",
                "owner t(us)", "normal t(us)", "ratio", "guards/proc",
                "owner remote");
    bench::JsonReport report("ownership");
    report.flag("N", bench::envInt("ANC_BENCH_N", 48));
    for (Workload &w : workloads()) {
        core::Compilation c = core::compile(w.prog);
        for (Int p : {4, 8, 16, 28}) {
            numa::SimOptions opts;
            opts.processors = p;
            ir::Bindings binds{w.params, w.scalars};
            bench::WallTimer t_own;
            numa::SimStats own = numa::simulateOwnership(w.prog, opts,
                                                         binds);
            double wall_own = t_own.seconds();
            bench::WallTimer t_norm;
            numa::SimStats norm = core::simulate(c, opts, binds);
            double wall_norm = t_norm.seconds();
            double to = own.parallelTime();
            double tn = norm.parallelTime();
            report.run(std::string(w.name) + "_owner", p, wall_own, to);
            report.run(std::string(w.name) + "_normalized", p, wall_norm,
                       tn);
            std::printf("%-9s %3lld %14.0f %14.0f %9.2f %12llu %12llu\n",
                        w.name, static_cast<long long>(p), to, tn,
                        to / tn,
                        static_cast<unsigned long long>(
                            own.perProc[0].guardChecks),
                        static_cast<unsigned long long>(
                            own.totalRemoteAccesses()));
        }
    }
    std::printf("\nthe ownership rule pays the guard on every iteration "
                "of every processor and\ncannot batch remote data; "
                "normalization removes both costs (the paper's\nmotivation "
                "for loop restructuring before code generation).\n\n");

    std::printf("--- ownership-rule node program for GEMM ---\n%s\n",
                codegen::emitOwnershipProgram(ir::gallery::gemm()).c_str());
    report.write();
}

void
BM_Ownership_SimulateGemm(benchmark::State &state)
{
    ir::Program p = ir::gallery::gemm();
    numa::SimOptions opts;
    opts.processors = state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            numa::simulateOwnership(p, opts, {{32}, {}}));
}
BENCHMARK(BM_Ownership_SimulateGemm)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
