file(REMOVE_RECURSE
  "CMakeFiles/distribution_test.dir/distribution_test.cc.o"
  "CMakeFiles/distribution_test.dir/distribution_test.cc.o.d"
  "distribution_test"
  "distribution_test.pdb"
  "distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
