#!/usr/bin/env python3
"""Gate the symbolic-validation latency sweep against its baseline.

Usage: check_verify.py CURRENT.json BASELINE.json [TOLERANCE]

Reads the BENCH_verify.json written by `bench_verify` and the committed
baseline, then fails (exit 1) when:

  * any (label, M) point of the baseline is missing from the current
    run -- a silently dropped sweep point would make the gate vacuous;
  * any point did not PASS validation: the sweep validates real
    compiled plans, and the serving path would refuse an unvalidated
    one, so a non-pass here is a correctness regression, not noise;
  * the prover's deadline charge is not flat in the bound: the steps
    at the largest M of `gemm_concrete` exceed STEP_FACTOR x the steps
    at the smallest M. Steps are deterministic, so this is the
    noise-free signal that an O(points) path crept into validation;
  * the headline point regressed: for each label's largest M, current
    wall time exceeds TOLERANCE x baseline wall time plus an absolute
    slack (ABS_SLACK_S) for timer noise on millisecond numbers.

Exit status: 0 when every check passes, 1 otherwise.
"""

import json
import sys

ABS_SLACK_S = 0.05
DEFAULT_TOLERANCE = 3.0
STEP_FACTOR = 1.5


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for r in doc.get("runs", []):
        runs[(r["label"], r["P"])] = r
    return runs


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 1
    current = load_runs(argv[1])
    baseline = load_runs(argv[2])
    tolerance = float(argv[3]) if len(argv) > 3 else DEFAULT_TOLERANCE
    errors = []

    for key in baseline:
        if key not in current:
            errors.append("missing sweep point %s M=%d" % key)

    for (label, m), r in sorted(current.items()):
        if str(r.get("passed", "")) not in ("true", "True"):
            errors.append("%s M=%d: validation did not pass" % (label, m))

    # Flat deadline charge across nine orders of magnitude of M.
    concrete = {m: r for (label, m), r in current.items()
                if label == "gemm_concrete"}
    if concrete:
        m_lo, m_hi = min(concrete), max(concrete)
        s_lo = int(concrete[m_lo].get("steps", 0))
        s_hi = int(concrete[m_hi].get("steps", 0))
        if s_lo <= 0:
            errors.append("gemm_concrete M=%d: no prover steps recorded"
                          % m_lo)
        elif s_hi > STEP_FACTOR * s_lo:
            errors.append(
                "prover steps are not flat in M: %d at M=%d vs %d at "
                "M=%d (budget %gx)" % (s_hi, m_hi, s_lo, m_lo,
                                       STEP_FACTOR))
        else:
            print("ok:   steps flat: %d at M=%d vs %d at M=%d"
                  % (s_hi, m_hi, s_lo, m_lo))
    else:
        errors.append("no gemm_concrete sweep points in current run")

    # The regression gate: each label's largest-M point.
    largest = {}
    for (label, m) in baseline:
        largest[label] = max(largest.get(label, 0), m)
    for label, m in sorted(largest.items()):
        base = baseline[(label, m)]
        cur = current.get((label, m))
        if cur is None:
            continue  # already reported missing
        budget = tolerance * base["wall_s"] + ABS_SLACK_S
        if cur["wall_s"] > budget:
            errors.append(
                "%s M=%d regressed: %.4f s vs baseline %.4f s "
                "(budget %.4f s = %gx + %g s)"
                % (label, m, cur["wall_s"], base["wall_s"], budget,
                   tolerance, ABS_SLACK_S))
        else:
            print("ok:   %s M=%d: %.4f s (budget %.4f s, %s steps)"
                  % (label, m, cur["wall_s"], budget,
                     cur.get("steps", "?")))

    for e in errors:
        print("FAIL: " + e)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
