/**
 * @file
 * Smith normal form over the integers.
 *
 * Not strictly required by the access-normalization pipeline (the
 * Diophantine solver uses the Hermite normal form), but provided as part
 * of the integer-lattice substrate: the Smith form exposes the invariant
 * factors of a lattice, which is useful for reasoning about the index
 * |det T| of a non-unimodular transformation.
 */

#ifndef ANC_RATMATH_SMITH_H
#define ANC_RATMATH_SMITH_H

#include "ratmath/matrix.h"

namespace anc {

/**
 * Smith normal form: u * A * v == s with u, v unimodular and s diagonal
 * with non-negative entries d_1 | d_2 | ... | d_r (r = rank).
 */
struct SmithForm
{
    IntMatrix s;
    IntMatrix u;
    IntMatrix v;
};

/** Compute the Smith normal form of an integer matrix. */
SmithForm smithForm(const IntMatrix &a);

} // namespace anc

#endif // ANC_RATMATH_SMITH_H
