#!/usr/bin/env python3
"""Gate the simulator-scored plan search against its baseline.

Usage: check_search.py CURRENT.json BASELINE.json [TOLERANCE]

Reads the BENCH_search.json written by `bench_search` and the committed
baseline, then fails (exit 1) when:

  * any kernel of the baseline is missing from the current run -- a
    silently dropped kernel would make the gate vacuous;
  * fewer than MIN_IMPROVED kernels improved -- the issue's acceptance
    bar is that the search strictly beats the heuristic on at least two
    gallery kernels;
  * a baseline win was lost: a kernel the baseline improves must still
    improve, and its simulated speedup must not shrink (the simulator
    is deterministic, so a smaller speedup means the search or the cost
    model changed -- SPEEDUP_EPS only absorbs float formatting);
  * admissibility broke: any kernel's searched simulated time exceeds
    its heuristic simulated time;
  * search wall time regressed: any kernel's search exceeds
    TOLERANCE x its baseline wall time plus an absolute slack
    (ABS_SLACK_S) that keeps timer noise on sub-millisecond searches
    from tripping the gate.

Exit status: 0 when every check passes, 1 otherwise.
"""

import json
import sys

ABS_SLACK_S = 0.25
DEFAULT_TOLERANCE = 3.0
MIN_IMPROVED = 2
SPEEDUP_EPS = 1e-6


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["label"]: r for r in doc.get("runs", [])}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 1
    current = load_runs(argv[1])
    baseline = load_runs(argv[2])
    tolerance = float(argv[3]) if len(argv) > 3 else DEFAULT_TOLERANCE
    errors = []

    for label in baseline:
        if label not in current:
            errors.append("missing kernel %s" % label)

    improved = 0
    for label, r in sorted(current.items()):
        searched = float(r["sim_time_us"])
        heuristic = float(r["heuristic_us"])
        if searched > heuristic:
            errors.append(
                "%s: searched plan lost to the heuristic "
                "(%.1f us vs %.1f us)" % (label, searched, heuristic))
        if r.get("improved"):
            improved += 1

    if improved < MIN_IMPROVED:
        errors.append(
            "only %d kernels improved; the issue requires >= %d"
            % (improved, MIN_IMPROVED))

    for label, base in sorted(baseline.items()):
        cur = current.get(label)
        if cur is None:
            continue  # already reported missing
        if base.get("improved") and not cur.get("improved"):
            errors.append(
                "%s: baseline win lost (search no longer improves it)"
                % label)
        elif base.get("improved"):
            if cur["speedup"] < base["speedup"] - SPEEDUP_EPS:
                errors.append(
                    "%s: speedup shrank: %.6fx vs baseline %.6fx"
                    % (label, cur["speedup"], base["speedup"]))
        budget = tolerance * base["wall_s"] + ABS_SLACK_S
        if cur["wall_s"] > budget:
            errors.append(
                "%s: search wall time regressed: %.4f s vs baseline "
                "%.4f s (budget %.4f s = %gx + %g s)"
                % (label, cur["wall_s"], base["wall_s"], budget,
                   tolerance, ABS_SLACK_S))
        else:
            print("ok:   %-14s %.4f s (budget %.4f s), speedup %.3fx%s"
                  % (label, cur["wall_s"], budget, cur["speedup"],
                     " [improved]" if cur.get("improved") else ""))

    for e in errors:
        print("FAIL: " + e)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
