/**
 * @file
 * The access normalization driver: the paper's full pipeline.
 *
 *   data access matrix  (Section 2.2, ordered by importance)
 *     -> BasisMatrix    (Section 5.1, first row basis)
 *     -> LegalBasis     (Section 6.1, dependence filtering/reversal)
 *     -> LegalInvt      (Section 6.2, legality-preserving padding)
 *     -> applyTransform (Section 3, lattice-based restructuring)
 *
 * When the data access matrix is itself invertible and legal, it is used
 * directly (Section 4).
 */

#ifndef ANC_XFORM_NORMALIZE_H
#define ANC_XFORM_NORMALIZE_H

#include <optional>

#include "deps/dependence.h"
#include "xform/access_matrix.h"
#include "xform/legal.h"
#include "xform/transform.h"

namespace anc::xform {

/** Options controlling the normalization pipeline. */
struct NormalizeOptions
{
    /** Enforce dependence legality (LegalBasis / LegalInvt). Disabling
     * this reproduces the Section 4/5 construction without Section 6,
     * for study only. */
    bool enforceLegality = true;
    /** Also report input (read-read) dependences in the result. */
    bool includeInputDeps = false;
    /** Use the paper's Section 2.2 ordering heuristic (distribution
     * dimensions first). Disable only to ablate the heuristic. */
    bool useDistributionHint = true;
    /**
     * Restrict the transformation to unimodular matrices (Banerjee's
     * special case): trailing basis rows are dropped until the padded
     * matrix has determinant +/-1, falling back to the identity when no
     * prefix works. Unimodular transformations need no image-lattice
     * strides or strength-reduced division code, so this is the middle
     * rung of core::compileResilient()'s degradation ladder.
     */
    bool unimodularOnly = false;
};

/** Which normalized subscript, if any, a transformed loop exposes. */
struct NormalizedLoop
{
    size_t loopLevel;  //!< row of T / level of the new nest
    size_t accessRow;  //!< index into AccessMatrixInfo::rows
    bool distDim;      //!< the subscript is in a distribution dimension
};

/** Full record of one access-normalization run. */
struct NormalizeResult
{
    AccessMatrixInfo access;   //!< the ordered data access matrix
    IntMatrix depMatrix;       //!< distance vectors (columns)
    bool depsImprecise = false;
    IntMatrix basis;           //!< after BasisMatrix
    IntMatrix legal;           //!< after LegalBasis (== basis when legality
                               //!< is disabled)
    IntMatrix transform;       //!< the final invertible T
    std::vector<NormalizedLoop> normalized; //!< Definition 4.1 hits
    std::optional<TransformedNest> nest;    //!< the restructured nest

    /** True when T is unimodular (Banerjee's special case). */
    bool unimodular = false;
    /** Rows of the access matrix that survived into T. */
    size_t rowsRetained = 0;
    /**
     * Set when the dependence analysis could not represent some
     * distance family exactly AND the exact family check
     * (deps::preservesLexSign) rejected the candidate transformation:
     * the pipeline then falls back to the identity (no restructuring),
     * which is always legal.
     */
    bool conservativeFallback = false;
    /** Under unimodularOnly: basis rows dropped to reach a unimodular
     * transformation. */
    size_t unimodularDropped = 0;

    // --- Decision trail (for obs/explain.h; always recorded, the
    // bookkeeping is a few integers per access row).
    /** Access-matrix rows BasisMatrix kept (indices, in kept order);
     * rows absent here were linearly dependent on earlier ones. */
    std::vector<size_t> basisKeptRows;
    /** LegalBasis verdict per basis row (empty when legality
     * enforcement was disabled). */
    std::vector<LegalRowVerdict> legalTrail;
    /** Dependence-carrying projection rows LegalInvt appended; the
     * remaining synthesized rows of T are identity padding. */
    size_t projectionRows = 0;
};

/**
 * Run the full pipeline on a program. The returned transformation is
 * always invertible and, unless legality enforcement was disabled,
 * respects every analyzed dependence.
 */
NormalizeResult accessNormalize(const ir::Program &prog,
                                const NormalizeOptions &opts = {});

/** Human-readable report of a normalization run (matrices, choices). */
std::string describe(const NormalizeResult &r, const ir::Program &prog);

/**
 * LegalInvt restricted to unimodular results: pads the longest prefix of
 * the (already legal) basis whose padded matrix is unimodular; when even
 * the empty prefix fails, returns the identity, which is always legal.
 * rows_dropped, when given, receives the number of discarded rows.
 */
IntMatrix unimodularLegalInvertible(const IntMatrix &legal,
                                    const IntMatrix &deps, size_t depth,
                                    size_t *rows_dropped = nullptr,
                                    size_t *projection_rows = nullptr);

} // namespace anc::xform

#endif // ANC_XFORM_NORMALIZE_H
