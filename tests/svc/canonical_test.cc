/**
 * @file
 * Property tests for svc::canonicalize and svc::planKey: the
 * canonicalizer is idempotent, access-equivalent disguises of the
 * gallery kernels (renamed, shifted, reversed, scale-rendered) produce
 * byte-identical canonical text and identical plan keys, and the key is
 * sensitive to everything the compilation actually depends on (machine
 * parameters, compile options) and nothing else.
 */

#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "ir/gallery.h"
#include "svc/canonical.h"
#include "svc/workload.h"

namespace anc::svc {
namespace {

std::vector<std::pair<const char *, ir::Program>>
galleryKernels()
{
    return {
        {"figure1", ir::gallery::figure1()},
        {"section3", ir::gallery::section3Example()},
        {"scaling", ir::gallery::scalingExample()},
        {"section5", ir::gallery::section5Example()},
        {"gemm", ir::gallery::gemm()},
        {"gemv", ir::gallery::gemv()},
        {"ger", ir::gallery::ger()},
        {"jacobi2d", ir::gallery::jacobi2d()},
        {"gaussSeidel", ir::gallery::gaussSeidel()},
        {"syr2kBanded", ir::gallery::syr2kBanded()},
    };
}

PlanKey
keyOf(const ir::Program &prog)
{
    core::CompileOptions opts;
    return planKey(canonicalize(prog),
                   numa::MachineParams::butterflyGP1000(), opts);
}

TEST(CanonicalTest, IdempotentOnEveryGalleryKernel)
{
    for (const auto &[name, prog] : galleryKernels()) {
        CanonicalForm once = canonicalize(prog);
        CanonicalForm twice = canonicalize(once.program);
        EXPECT_EQ(once.text, twice.text) << name;
        // The second pass finds nothing left to do.
        EXPECT_EQ(twice.shiftedLevels, 0u) << name;
        EXPECT_EQ(twice.reversedLevels, 0u) << name;
        EXPECT_FALSE(twice.renamed) << name;
    }
}

TEST(CanonicalTest, RenamedVariantsFoldOntoOneForm)
{
    for (const auto &[name, prog] : galleryKernels()) {
        CanonicalForm base = canonicalize(prog);
        for (const char *prefix : {"t", "idx", "zz"}) {
            ir::Program variant = renamedVariant(prog, prefix);
            CanonicalForm c = canonicalize(variant);
            EXPECT_EQ(c.text, base.text) << name << " prefix " << prefix;
            EXPECT_EQ(keyOf(variant), keyOf(prog)) << name;
        }
    }
}

TEST(CanonicalTest, ShiftedVariantsFoldOntoOneForm)
{
    for (const auto &[name, prog] : galleryKernels()) {
        CanonicalForm base = canonicalize(prog);
        for (Int delta : {Int(1), Int(7), Int(-3)}) {
            ir::Program variant = shiftedVariant(prog, delta);
            CanonicalForm c = canonicalize(variant);
            EXPECT_EQ(c.text, base.text)
                << name << " delta " << delta;
            EXPECT_EQ(keyOf(variant), keyOf(prog)) << name;
        }
    }
}

TEST(CanonicalTest, ReversedVariantsFoldOntoOneForm)
{
    for (const auto &[name, prog] : galleryKernels()) {
        CanonicalForm base = canonicalize(prog);
        for (size_t level = 0; level < prog.nest.depth(); ++level) {
            ir::Program variant = reversedVariant(prog, level);
            CanonicalForm c = canonicalize(variant);
            EXPECT_EQ(c.text, base.text)
                << name << " level " << level;
            EXPECT_EQ(keyOf(variant), keyOf(prog)) << name;
        }
    }
}

TEST(CanonicalTest, ScaleRenderedSourceFoldsOntoOneForm)
{
    // Bounds rendered as (f*(e))/f parse back to the exact same
    // rational coefficients, so the canonical form -- and therefore the
    // key -- is untouched by the rendering.
    for (const auto &[name, prog] : galleryKernels()) {
        CanonicalForm base = canonicalize(prog);
        for (Int factor : {Int(2), Int(5)}) {
            ir::Program parsed =
                dsl::parseProgram(rescaledSource(prog, factor));
            CanonicalForm c = canonicalize(parsed);
            EXPECT_EQ(c.text, base.text)
                << name << " factor " << factor;
            EXPECT_EQ(keyOf(parsed), keyOf(prog)) << name;
        }
    }
}

TEST(CanonicalTest, StackedDisguisesStillFold)
{
    // Rename, then shift, then reverse the outer level, then render
    // with scaled bounds: four disguises deep, still one key.
    ir::Program gemm = ir::gallery::gemm();
    ir::Program stacked =
        reversedVariant(shiftedVariant(renamedVariant(gemm, "u"), 4), 0);
    ir::Program parsed = dsl::parseProgram(rescaledSource(stacked, 3));
    EXPECT_EQ(canonicalize(parsed).text, canonicalize(gemm).text);
    EXPECT_EQ(keyOf(parsed), keyOf(gemm));
}

TEST(CanonicalTest, CanonicalTextMatchesProgramRendering)
{
    // `text` is exactly the DSL rendering of `program`: parsing it back
    // and canonicalizing again is a fixed point end to end.
    ir::Program jacobi = ir::gallery::jacobi2d();
    CanonicalForm c = canonicalize(jacobi);
    ir::Program reparsed = dsl::parseProgram(c.text);
    EXPECT_EQ(canonicalize(reparsed).text, c.text);
}

TEST(CanonicalTest, DistinctKernelsGetDistinctKeys)
{
    std::vector<PlanKey> keys;
    for (const auto &[name, prog] : galleryKernels())
        keys.push_back(keyOf(prog));
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

TEST(CanonicalTest, KeyDependsOnMachineParameters)
{
    CanonicalForm c = canonicalize(ir::gallery::gemm());
    core::CompileOptions opts;
    PlanKey gp =
        planKey(c, numa::MachineParams::butterflyGP1000(), opts);
    PlanKey ipsc = planKey(c, numa::MachineParams::ipsc860(), opts);
    EXPECT_NE(gp, ipsc);

    numa::MachineParams tweaked = numa::MachineParams::butterflyGP1000();
    tweaked.elementSize += 4;
    EXPECT_NE(planKey(c, tweaked, opts), gp);
}

TEST(CanonicalTest, KeyDependsOnCompileOptions)
{
    CanonicalForm c = canonicalize(ir::gallery::gemm());
    numa::MachineParams m = numa::MachineParams::butterflyGP1000();
    core::CompileOptions base;
    PlanKey k0 = planKey(c, m, base);

    core::CompileOptions identity = base;
    identity.identityTransform = true;
    EXPECT_NE(planKey(c, m, identity), k0);

    core::CompileOptions validate = base;
    validate.validate = true;
    EXPECT_NE(planKey(c, m, validate), k0);

    core::CompileOptions uniOnly = base;
    uniOnly.normalize.unimodularOnly = true;
    EXPECT_NE(planKey(c, m, uniOnly), k0);
}

TEST(CanonicalTest, KeyIgnoresObservabilityKnobs)
{
    // Tracing and cancellation change nothing about the produced plan,
    // so they must not split the cache.
    CanonicalForm c = canonicalize(ir::gallery::gemm());
    numa::MachineParams m = numa::MachineParams::butterflyGP1000();
    core::CompileOptions base;
    core::CompileOptions traced = base;
    obs::Trace trace;
    traced.trace = &trace;
    traced.tracePid = 42;
    EXPECT_EQ(planKey(c, m, traced), planKey(c, m, base));
}

TEST(CanonicalTest, HexKeyIsStableAnd32Digits)
{
    PlanKey k = keyOf(ir::gallery::gemm());
    EXPECT_EQ(k.hex().size(), 32u);
    EXPECT_EQ(k.hex(), keyOf(ir::gallery::gemm()).hex());
}

TEST(CanonicalTest, RejectsInvalidProgram)
{
    ir::Program bad = ir::gallery::gemm();
    bad.arrays[0].extents.clear();
    EXPECT_THROW(canonicalize(bad), UserError);
}

TEST(CanonicalTest, KeyCoversEverySemanticsAffectingOptionField)
{
    // Key-completeness: flip every CompileOptions field that can change
    // the produced plan, one at a time, and require a fresh key each
    // time. A field missing from planKey shows up here as a cache-
    // poisoning collision.
    CanonicalForm c = canonicalize(ir::gallery::gemm());
    numa::MachineParams m = numa::MachineParams::butterflyGP1000();
    using Mutator = void (*)(core::CompileOptions &);
    struct Field
    {
        const char *name;
        Mutator flip;
    };
    const Field fields[] = {
        {"identityTransform",
         [](core::CompileOptions &o) { o.identityTransform = true; }},
        {"validate", [](core::CompileOptions &o) { o.validate = true; }},
        {"normalize.enforceLegality",
         [](core::CompileOptions &o) {
             o.normalize.enforceLegality = false;
         }},
        {"normalize.includeInputDeps",
         [](core::CompileOptions &o) {
             o.normalize.includeInputDeps = true;
         }},
        {"normalize.useDistributionHint",
         [](core::CompileOptions &o) {
             o.normalize.useDistributionHint = false;
         }},
        {"normalize.unimodularOnly",
         [](core::CompileOptions &o) {
             o.normalize.unimodularOnly = true;
         }},
        {"search.enabled",
         [](core::CompileOptions &o) { o.search.enabled = true; }},
        {"search.budget",
         [](core::CompileOptions &o) { o.search.budget = 7; }},
        {"search.paramValue",
         [](core::CompileOptions &o) { o.search.paramValue = 17; }},
        {"search.maxEnumerated",
         [](core::CompileOptions &o) { o.search.maxEnumerated = 99; }},
        {"search.processorSweep size",
         [](core::CompileOptions &o) {
             o.search.processorSweep = {4, 32};
         }},
        {"search.processorSweep element",
         [](core::CompileOptions &o) {
             o.search.processorSweep = {4, 32, 4095};
         }},
        {"search.machine preset",
         [](core::CompileOptions &o) {
             o.search.machine = numa::MachineParams::ipsc860();
         }},
        {"search.machine.name",
         [](core::CompileOptions &o) {
             o.search.machine.name = "renamed";
         }},
        {"search.machine.localAccessTime",
         [](core::CompileOptions &o) {
             o.search.machine.localAccessTime += 0.125;
         }},
        {"search.machine.remoteAccessTime",
         [](core::CompileOptions &o) {
             o.search.machine.remoteAccessTime += 0.125;
         }},
        {"search.machine.blockStartupTime",
         [](core::CompileOptions &o) {
             o.search.machine.blockStartupTime += 0.125;
         }},
        {"search.machine.blockPerByteTime",
         [](core::CompileOptions &o) {
             o.search.machine.blockPerByteTime += 0.125;
         }},
        {"search.machine.flopTime",
         [](core::CompileOptions &o) {
             o.search.machine.flopTime += 0.125;
         }},
        {"search.machine.loopOverheadTime",
         [](core::CompileOptions &o) {
             o.search.machine.loopOverheadTime += 0.125;
         }},
        {"search.machine.guardTime",
         [](core::CompileOptions &o) {
             o.search.machine.guardTime += 0.125;
         }},
        {"search.machine.syncTime",
         [](core::CompileOptions &o) {
             o.search.machine.syncTime += 0.125;
         }},
        {"search.machine.retryBackoffTime",
         [](core::CompileOptions &o) {
             o.search.machine.retryBackoffTime += 0.125;
         }},
        {"search.machine.restartTime",
         [](core::CompileOptions &o) {
             o.search.machine.restartTime += 0.125;
         }},
        {"search.machine.elementSize",
         [](core::CompileOptions &o) {
             o.search.machine.elementSize = 4;
         }},
        {"search.machine.contentionFactor",
         [](core::CompileOptions &o) {
             o.search.machine.contentionFactor = 0.5;
         }},
    };

    core::CompileOptions base;
    PlanKey k0 = planKey(c, m, base);
    std::vector<std::pair<std::string, PlanKey>> keys;
    keys.emplace_back("base", k0);
    for (const Field &f : fields) {
        core::CompileOptions flipped;
        f.flip(flipped);
        PlanKey k = planKey(c, m, flipped);
        EXPECT_NE(k, k0) << f.name
                         << " does not reach planKey: flipping it kept "
                            "the cache key";
        keys.emplace_back(f.name, k);
    }
    // And no two single-field flips may collide with each other.
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i].second, keys[j].second)
                << keys[i].first << " collides with " << keys[j].first;
}

TEST(CanonicalTest, KeyIgnoresSearchHostThreads)
{
    // SimStats are bit-identical for every hostThreads value, so the
    // knob cannot change the searched winner and must not split the
    // plan cache.
    CanonicalForm c = canonicalize(ir::gallery::gemm());
    numa::MachineParams m = numa::MachineParams::butterflyGP1000();
    core::CompileOptions base;
    base.search.enabled = true;
    core::CompileOptions threaded = base;
    threaded.search.hostThreads = 4;
    EXPECT_EQ(planKey(c, m, threaded), planKey(c, m, base));
}

} // namespace
} // namespace anc::svc
