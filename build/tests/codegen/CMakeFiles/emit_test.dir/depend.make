# Empty dependencies file for emit_test.
# This may be replaced when dependencies are built.
