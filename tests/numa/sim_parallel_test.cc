/**
 * @file
 * Determinism tests for the simulator's fast paths: host-parallel
 * execution (SimOptions::hostThreads) and the strength-reduced /
 * closed-form innermost loop (SimOptions::fastInner) must both be
 * bit-identical to the serial naive walk -- every counter equal, every
 * simulated clock equal to the last bit.
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "ir/builder.h"
#include "ir/gallery.h"
#include "numa/simulator.h"

namespace anc::numa {
namespace {

using core::Compilation;
using core::CompileOptions;

void
expectIdentical(const SimStats &a, const SimStats &b, const char *what)
{
    ASSERT_EQ(a.perProc.size(), b.perProc.size()) << what;
    EXPECT_EQ(a.processors, b.processors) << what;
    for (size_t i = 0; i < a.perProc.size(); ++i) {
        const ProcStats &x = a.perProc[i];
        const ProcStats &y = b.perProc[i];
        SCOPED_TRACE(std::string(what) + " proc " + std::to_string(x.proc));
        EXPECT_EQ(x.proc, y.proc);
        EXPECT_EQ(x.iterations, y.iterations);
        EXPECT_EQ(x.flops, y.flops);
        EXPECT_EQ(x.localAccesses, y.localAccesses);
        EXPECT_EQ(x.remoteAccesses, y.remoteAccesses);
        EXPECT_EQ(x.blockTransfers, y.blockTransfers);
        EXPECT_EQ(x.blockElements, y.blockElements);
        EXPECT_EQ(x.guardChecks, y.guardChecks);
        EXPECT_EQ(x.syncs, y.syncs);
        EXPECT_EQ(x.remoteByArray, y.remoteByArray);
        // Bit-identical, not approximately equal: the simulated clock
        // is a pure function of the counters.
        EXPECT_EQ(x.time, y.time);
    }
}

struct Workload
{
    const char *name;
    Compilation comp;
    ir::Bindings binds;
};

std::vector<Workload>
gallery()
{
    CompileOptions identity;
    identity.identityTransform = true;
    std::vector<Workload> w;
    w.push_back({"gemm", core::compile(ir::gallery::gemm()), {{13}, {}}});
    w.push_back({"gemm_plain",
                 core::compile(ir::gallery::gemm(), identity), {{13}, {}}});
    w.push_back({"syr2k", core::compile(ir::gallery::syr2kBanded()),
                 {{17, 5}, {1.5, 0.5}}});
    w.push_back({"syr2k_plain",
                 core::compile(ir::gallery::syr2kBanded(), identity),
                 {{17, 5}, {1.5, 0.5}}});
    w.push_back({"figure1", core::compile(ir::gallery::figure1()),
                 {{9, 7, 4}, {}}});
    return w;
}

SimStats
runWith(const Workload &w, Int p, Int host_threads, bool fast_inner,
        bool blocks)
{
    SimOptions opts;
    opts.processors = p;
    opts.blockTransfers = blocks;
    opts.hostThreads = host_threads;
    opts.fastInner = fast_inner;
    return core::simulate(w.comp, opts, w.binds);
}

TEST(SimParallel, ThreadCountsProduceIdenticalStats)
{
    for (const Workload &w : gallery()) {
        for (Int p : {4, 7, 32}) {
            SimStats serial = runWith(w, p, 1, true, true);
            for (Int threads : {2, 4, 8}) {
                SimStats parallel = runWith(w, p, threads, true, true);
                expectIdentical(serial, parallel, w.name);
            }
            // hostThreads = 0 ("all hardware") must agree too.
            SimStats all = runWith(w, p, 0, true, true);
            expectIdentical(serial, all, w.name);
        }
    }
}

TEST(SimParallel, FastInnerMatchesNaiveWalk)
{
    for (const Workload &w : gallery()) {
        for (Int p : {1, 3, 8, 32}) {
            for (bool blocks : {false, true}) {
                SimStats naive = runWith(w, p, 1, false, blocks);
                SimStats fast = runWith(w, p, 1, true, blocks);
                expectIdentical(naive, fast, w.name);
            }
        }
    }
}

TEST(SimParallel, FastInnerMatchesOnBlockedDistributions)
{
    // Blocked distribution with the distribution subscript varying in
    // the innermost loop: exercises the incremental (Stepped) path,
    // where ownership crosses block boundaries mid-run.
    ir::Program p = ir::gallery::gemm();
    for (ir::ArrayDecl &a : p.arrays)
        a.dist = ir::DistributionSpec::blocked(1);
    for (bool identity : {false, true}) {
        CompileOptions opts;
        opts.identityTransform = identity;
        Compilation c = core::compile(p, opts);
        Workload w{"gemm_blocked", std::move(c), {{19}, {}}};
        for (Int procs : {3, 8}) {
            SimStats naive = runWith(w, procs, 1, false, true);
            SimStats fast = runWith(w, procs, 1, true, true);
            expectIdentical(naive, fast, w.name);
        }
    }
}

TEST(SimParallel, FastInnerMatchesOnBlock2D)
{
    // 2-D block distribution: both distribution coordinates advance
    // incrementally and the owner is a grid cell.
    ir::ProgramBuilder b(2);
    size_t pn = b.param("N");
    auto N = b.par(pn);
    b.array("A", {N, N}, ir::DistributionSpec::block2d(0, 1));
    b.array("B", {N, N}, ir::DistributionSpec::block2d(0, 1));
    b.loop("i", b.cst(0), N - b.cst(1));
    b.loop("j", b.cst(0), N - b.cst(1));
    b.assign(b.ref(0, {b.var(0), b.var(1)}),
             ir::Expr::arrayRead(b.ref(1, {b.var(1), b.var(0)})));
    Compilation c = core::compile(b.build());
    Workload w{"block2d", std::move(c), {{21}, {}}};
    for (Int procs : {4, 6, 9}) {
        SimStats naive = runWith(w, procs, 1, false, true);
        SimStats fast = runWith(w, procs, 1, true, true);
        expectIdentical(naive, fast, w.name);
    }
}

TEST(SimParallel, FastInnerMatchesOnStridedWrappedSubscripts)
{
    // Wrapped ownership with a non-unit per-iteration delta (2j) and a
    // negative delta (N - 1 - j): stresses the congruence-counting
    // closed form at gcd(delta, P) != 1.
    ir::ProgramBuilder b(2);
    size_t pn = b.param("N");
    auto N = b.par(pn);
    b.array("A", {N.scaled(Rational(2))},
            ir::DistributionSpec::wrapped(0));
    b.array("B", {N}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(0), N - b.cst(1));
    b.loop("j", b.cst(0), N - b.cst(1));
    b.assign(b.ref(1, {b.var(0)}),
             ir::Expr::binary(
                 '+',
                 ir::Expr::arrayRead(
                     b.ref(0, {b.var(1).scaled(Rational(2))})),
                 ir::Expr::arrayRead(
                     b.ref(1, {N - b.cst(1) - b.var(1)}))));
    for (bool identity : {false, true}) {
        CompileOptions opts;
        opts.identityTransform = identity;
        Compilation c = core::compile(b.build(), opts);
        Workload w{"strided", std::move(c), {{24}, {}}};
        for (Int procs : {2, 4, 6, 7, 32}) {
            for (bool blocks : {false, true}) {
                SimStats naive = runWith(w, procs, 1, false, blocks);
                SimStats fast = runWith(w, procs, 1, true, blocks);
                expectIdentical(naive, fast, w.name);
            }
        }
    }
}

TEST(SimParallel, SampledRunsUnaffectedByThreadsAndFastInner)
{
    Workload w{"gemm", core::compile(ir::gallery::gemm()), {{11}, {}}};
    SimOptions base;
    base.processors = 8;
    base.sampleProcs = {0, 3, 7};
    base.hostThreads = 1;
    base.fastInner = false;
    SimStats naive = core::simulate(w.comp, base, w.binds);
    SimOptions opt = base;
    opt.hostThreads = 4;
    opt.fastInner = true;
    SimStats fast = core::simulate(w.comp, opt, w.binds);
    expectIdentical(naive, fast, "sampled");
}

TEST(SimParallel, ValueExecutionStaysSerialAndCorrect)
{
    // executeValues forces the serial path regardless of hostThreads;
    // results must still match a sequential interpreter run.
    Compilation c = core::compile(ir::gallery::gemm());
    Int n = 6;
    ir::Bindings binds{{n}, {}};
    ir::ArrayStorage seq(c.program, {n});
    seq.fillDeterministic(7);
    ir::run(c.program, binds, seq);

    SimOptions opts;
    opts.processors = 4;
    opts.executeValues = true;
    opts.hostThreads = 8;
    ir::ArrayStorage par(c.program, {n});
    par.fillDeterministic(7);
    Simulator sim(c.program, c.nest(), c.plan, opts);
    sim.run(binds, &par);
    EXPECT_EQ(seq.data(0), par.data(0));
}

TEST(SimParallel, NonParallelOuterLoopIdenticalAcrossThreads)
{
    // An outer-carried dependence forces the serial path; hostThreads
    // must not change anything, including the sync counters.
    ir::ProgramBuilder b(2);
    b.array("A", {b.cst(24), b.cst(24)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(1), b.cst(23));
    b.loop("j", b.cst(0), b.cst(23));
    b.assign(b.ref(0, {b.var(0), b.var(1)}),
             ir::Expr::binary(
                 '+',
                 ir::Expr::arrayRead(
                     b.ref(0, {b.var(0) - b.cst(1), b.var(1)})),
                 ir::Expr::number_(1.0)));
    Compilation c = core::compile(b.build());
    ASSERT_FALSE(c.plan.outerParallel);
    Workload w{"carried", std::move(c), {{}, {}}};
    SimStats serial = runWith(w, 6, 1, false, true);
    SimStats threaded = runWith(w, 6, 8, true, true);
    expectIdentical(serial, threaded, w.name);
    uint64_t syncs = 0;
    for (const ProcStats &ps : serial.perProc)
        syncs += ps.syncs;
    EXPECT_GT(syncs, 0u);
}

TEST(SimParallel, OwnershipBaselineDeterministic)
{
    // simulateOwnership shares the compiled-subscript helper; its
    // results must be stable run to run.
    ir::Program p = ir::gallery::gemm();
    SimOptions opts;
    opts.processors = 5;
    SimStats a = simulateOwnership(p, opts, {{9}, {}});
    SimStats b = simulateOwnership(p, opts, {{9}, {}});
    expectIdentical(a, b, "ownership");
}

} // namespace
} // namespace anc::numa
