/**
 * @file
 * Application of invertible integer loop transformations (Section 3).
 *
 * Given a source nest and an invertible integer matrix T, the transformed
 * iteration space is  T(P) ∩ T.Z^n : the rational image polyhedron (whose
 * per-level bounds come from Fourier-Motzkin elimination of A T^{-1} u)
 * intersected with the image lattice (whose strides and congruence
 * anchors come from the column HNF of T). The body's subscripts are
 * rewritten through x = T^{-1} u; their coefficients may become rational
 * but are integral at every enumerated point.
 *
 * For unimodular T the lattice is all of Z^n, every stride is 1, and the
 * machinery degenerates to Banerjee's framework, as the paper notes.
 */

#ifndef ANC_XFORM_TRANSFORM_H
#define ANC_XFORM_TRANSFORM_H

#include <cstdint>
#include <functional>
#include <string>

#include "ir/interp.h"
#include "ratmath/lattice.h"
#include "xform/fourier_motzkin.h"

namespace anc::xform {

/** One loop level of a transformed nest. */
struct TransformedLoop
{
    std::string var;
    std::vector<ir::AffineExpr> lower; //!< over outer new vars + params
    std::vector<ir::AffineExpr> upper;
    Int stride; //!< H[k][k]; 1 for unimodular transformations
};

/** A restructured loop nest, executable and printable. */
class TransformedNest
{
  public:
    TransformedNest(IntMatrix t, RatMatrix t_inv, Lattice lattice,
                    std::vector<TransformedLoop> loops,
                    std::vector<ir::Statement> body,
                    std::vector<ir::AffineExpr> param_conditions);

    size_t depth() const { return loops_.size(); }
    const IntMatrix &transform() const { return t_; }
    const RatMatrix &inverseTransform() const { return tInv_; }
    const Lattice &lattice() const { return lattice_; }
    const std::vector<TransformedLoop> &loops() const { return loops_; }
    const std::vector<ir::Statement> &body() const { return body_; }
    const std::vector<ir::AffineExpr> &
    paramConditions() const
    {
        return paramConditions_;
    }

    /** Concrete lower bound at level k (ceil of max over bounds). */
    Int lowerAt(size_t k, const IntVec &u, const IntVec &params) const;

    /** Concrete upper bound at level k (floor of min over bounds). */
    Int upperAt(size_t k, const IntVec &u, const IntVec &params) const;

    /**
     * First admissible value >= the concrete lower bound at level k,
     * given the forward-substitution prefix y_0..y_{k-1}: the smallest
     * value congruent to the lattice anchor modulo the stride.
     */
    Int startAt(size_t k, Int lower, const IntVec &y_prefix) const;

    /** The source-space iteration corresponding to new-space point u. */
    IntVec oldIteration(const IntVec &u) const;

    /**
     * Enumerate the transformed iteration space in lexicographic order.
     * Each visited point u corresponds to exactly one source iteration
     * T^{-1} u. Returns the iteration count.
     */
    uint64_t
    forEachIteration(const IntVec &params,
                     const std::function<void(const IntVec &)> &fn) const;

    /**
     * Execute the (rewritten) body over the whole space; semantically
     * equal to running the source program when the transformation is
     * legal. Returns the iteration count.
     */
    uint64_t run(const ir::Bindings &binds, ir::ArrayStorage &store,
                 const ir::TraceFn &trace = nullptr) const;

  private:
    IntMatrix t_;
    RatMatrix tInv_;
    Lattice lattice_;
    std::vector<TransformedLoop> loops_;
    std::vector<ir::Statement> body_;
    std::vector<ir::AffineExpr> paramConditions_;
};

/**
 * Apply the invertible transformation t to the program's nest.
 * Throws MathError if t is singular and UserError if the space is
 * unbounded.
 */
TransformedNest applyTransform(const ir::Program &prog, const IntMatrix &t);

/** Names u, v, w, z, u4, u5, ... for transformed loops. */
std::string newLoopVarName(size_t k);

/** Render the transformed nest in the paper's style (Figure 1(c)),
 * including strides and congruence anchors for non-unimodular T. */
std::string printTransformedNest(const TransformedNest &nest,
                                 const ir::Program &prog);

} // namespace anc::xform

#endif // ANC_XFORM_TRANSFORM_H
