/**
 * @file
 * Edge cases for the NUMA simulator and statistics helpers.
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "ir/builder.h"
#include "ir/gallery.h"
#include "numa/simulator.h"

namespace anc::numa {
namespace {

TEST(SimEdge, MoreProcessorsThanIterations)
{
    // 4 outer iterations on 16 processors: 12 idle processors, the
    // work still covered exactly once.
    ir::ProgramBuilder b(1);
    b.array("A", {b.cst(4)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(0), b.cst(3));
    b.assign(b.ref(0, {b.var(0)}), ir::Expr::number_(1.0));
    core::Compilation c = core::compile(b.build());
    SimOptions opts;
    opts.processors = 16;
    SimStats s = core::simulate(c, opts, {{}, {}});
    EXPECT_EQ(s.totalIterations(), 4u);
    size_t idle = 0;
    for (const ProcStats &p : s.perProc)
        if (p.iterations == 0)
            ++idle;
    EXPECT_EQ(idle, 12u);
}

TEST(SimEdge, OwnerWrappedProcessorWithNoCongruentIteration)
{
    // Stride-2 lattice outer loop with wrapped ownership: on an even
    // processor count some processors own only odd columns and can be
    // left without iterations; the CRT combination must handle it.
    ir::Program p = ir::gallery::scalingExample(); // A replicated
    p.arrays[0].dist = ir::DistributionSpec::wrapped(0);
    core::Compilation c = core::compile(p);
    ASSERT_EQ(c.plan.scheme, PartitionScheme::OwnerWrapped);
    SimOptions opts;
    opts.processors = 2;
    SimStats s = core::simulate(c, opts, {{}, {}});
    // Outer values are u = 2, 4, 6 (all even): processor 1 idles.
    EXPECT_EQ(s.totalIterations(), 3u);
    EXPECT_EQ(s.perProc[0].iterations, 3u);
    EXPECT_EQ(s.perProc[1].iterations, 0u);
}

TEST(SimEdge, ZeroProcessorOptionRejected)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    SimOptions opts;
    opts.processors = 0;
    EXPECT_THROW(
        Simulator(c.program, c.nest(), c.plan, opts), UserError);
}

TEST(SimEdge, SampleProcsOutOfRangeRejected)
{
    SimOptions opts;
    opts.processors = 8;
    opts.sampleProcs = {0, 8};
    try {
        opts.validate();
        FAIL() << "out-of-range sampled processor accepted";
    } catch (const UserError &e) {
        // Actionable: names the bad value and the legal range.
        EXPECT_NE(std::string(e.what()).find("8"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("[0, 8)"),
                  std::string::npos);
    }
    opts.sampleProcs = {-1};
    EXPECT_THROW(opts.validate(), UserError);
}

TEST(SimEdge, SampleProcsDuplicatesRejected)
{
    SimOptions opts;
    opts.processors = 8;
    opts.sampleProcs = {3, 1, 3};
    try {
        opts.validate();
        FAIL() << "duplicate sampled processor accepted";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("more than once"),
                  std::string::npos);
    }
    // Distinct entries in any order are fine.
    opts.sampleProcs = {7, 0, 3};
    EXPECT_NO_THROW(opts.validate());
}

TEST(SimEdge, WrongParameterArityRejected)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    SimOptions opts;
    opts.processors = 2;
    EXPECT_THROW(core::simulate(c, opts, {{4, 5}, {}}), UserError);
}

TEST(SimEdge, IpscMachineRuns)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    SimOptions opts;
    opts.processors = 8;
    opts.machine = MachineParams::ipsc860();
    SimStats with_blocks = core::simulate(c, opts, {{16}, {}});
    opts.blockTransfers = false;
    SimStats without = core::simulate(c, opts, {{16}, {}});
    // On a message-passing machine, element-wise remote access is
    // catastrophic; block transfers must win by a wide margin.
    EXPECT_LT(with_blocks.parallelTime() * 4, without.parallelTime());
}

TEST(StatsEdge, SummarizeAndImbalance)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    SimOptions opts;
    opts.processors = 3;
    SimStats s = core::simulate(c, opts, {{9}, {}});
    std::string sum = summarize(s);
    EXPECT_NE(sum.find("P = 3"), std::string::npos);
    EXPECT_NE(sum.find("iterations"), std::string::npos);
    // 9 columns over 3 processors: perfectly balanced.
    EXPECT_NEAR(s.imbalance(), 1.0, 0.05);

    // Unbalanced: 4 outer iterations on 3 processors.
    SimStats s2 = core::simulate(c, opts, {{4}, {}});
    EXPECT_GT(s2.imbalance(), 1.2);
    EXPECT_EQ(SimStats{}.imbalance(), 1.0);
}

TEST(StatsEdge, RemoteByArrayLazyAllocation)
{
    ProcStats p;
    EXPECT_TRUE(p.remoteByArray.empty());
    p.noteRemote(2, 4);
    ASSERT_EQ(p.remoteByArray.size(), 4u);
    EXPECT_EQ(p.remoteByArray[2], 1u);
    EXPECT_EQ(p.remoteAccesses, 1u);
    p.noteRemote(2, 4);
    EXPECT_EQ(p.remoteByArray[2], 2u);
}

TEST(SimEdge, ReplicatedEverythingNeverRemote)
{
    ir::Program p = ir::gallery::gemm();
    for (ir::ArrayDecl &a : p.arrays)
        a.dist = ir::DistributionSpec::replicated();
    core::Compilation c = core::compile(p);
    SimOptions opts;
    opts.processors = 8;
    SimStats s = core::simulate(c, opts, {{12}, {}});
    EXPECT_EQ(s.totalRemoteAccesses(), 0u);
    EXPECT_EQ(s.totalBlockTransfers(), 0u);
    EXPECT_EQ(s.totalIterations(), 12u * 12u * 12u);
}

TEST(SimEdge, OwnershipWithReplicatedLhs)
{
    // Replicated left-hand side: by convention processor 0 executes.
    ir::ProgramBuilder b(1);
    b.array("A", {b.cst(8)});
    b.loop("i", b.cst(0), b.cst(7));
    b.assign(b.ref(0, {b.var(0)}), ir::Expr::number_(1.0));
    SimOptions opts;
    opts.processors = 4;
    SimStats s = simulateOwnership(b.build(), opts, {{}, {}});
    EXPECT_EQ(s.perProc[0].iterations, 8u);
    EXPECT_EQ(s.perProc[1].iterations, 0u);
    for (const ProcStats &ps : s.perProc)
        EXPECT_EQ(ps.guardChecks, 8u);
}

TEST(SimEdge, OwnershipWithMoreProcessorsThanIterations)
{
    // 3 wrapped elements on 8 processors: processors 3..7 own nothing,
    // yet every processor still scans (and pays the guard for) the
    // whole iteration space.
    ir::ProgramBuilder b(1);
    b.array("A", {b.cst(3)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(0), b.cst(2));
    b.assign(b.ref(0, {b.var(0)}), ir::Expr::number_(1.0));
    SimOptions opts;
    opts.processors = 8;
    SimStats s = simulateOwnership(b.build(), opts, {{}, {}});
    EXPECT_EQ(s.totalIterations(), 3u);
    for (const ProcStats &ps : s.perProc) {
        EXPECT_EQ(ps.iterations, ps.proc < 3 ? 1u : 0u);
        EXPECT_EQ(ps.guardChecks, 3u);
        EXPECT_GT(ps.time, 0.0); // idle processors still paid the scan
    }
}

TEST(SimEdge, OwnershipZeroTripNest)
{
    // An empty iteration space: no iterations, no guards, zero time.
    ir::ProgramBuilder b(1);
    b.array("A", {b.cst(4)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(3), b.cst(1)); // lo > hi
    b.assign(b.ref(0, {b.var(0)}), ir::Expr::number_(1.0));
    SimOptions opts;
    opts.processors = 4;
    SimStats s = simulateOwnership(b.build(), opts, {{}, {}});
    EXPECT_EQ(s.totalIterations(), 0u);
    for (const ProcStats &ps : s.perProc) {
        EXPECT_EQ(ps.guardChecks, 0u);
        EXPECT_EQ(ps.time, 0.0);
    }
}

TEST(SimEdge, OwnershipRemoteByArrayBreakdown)
{
    // A owned wrapped, B deliberately misaligned (shifted by one): all
    // B reads are remote for P > 1, and the per-array breakdown must
    // attribute every remote access to B.
    ir::ProgramBuilder b(1);
    b.array("A", {b.cst(8)}, ir::DistributionSpec::wrapped(0));
    b.array("B", {b.cst(9)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(0), b.cst(7));
    b.assign(b.ref(0, {b.var(0)}),
             ir::Expr::arrayRead(b.ref(1, {b.var(0) + b.cst(1)})));
    SimOptions opts;
    opts.processors = 4;
    SimStats s = simulateOwnership(b.build(), opts, {{}, {}});
    EXPECT_EQ(s.remoteAccessesTo(1), 8u); // every B read
    EXPECT_EQ(s.remoteAccessesTo(0), 0u); // A writes are owner-local
    EXPECT_EQ(s.totalRemoteAccesses(),
              s.remoteAccessesTo(0) + s.remoteAccessesTo(1));
    uint64_t by_array = 0;
    for (const ProcStats &ps : s.perProc)
        for (uint64_t n : ps.remoteByArray)
            by_array += n;
    EXPECT_EQ(by_array, s.totalRemoteAccesses());
}

TEST(PlanValidation, OwnerSchemeRequiresAlignedArray)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    ASSERT_NE(c.plan.scheme, PartitionScheme::RoundRobin);
    SimOptions opts;
    ExecutionPlan bad = c.plan;
    bad.alignedArray.reset();
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
    bad = c.plan;
    bad.alignedArray = 99;
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
}

TEST(PlanValidation, HoistBoundsChecked)
{
    core::Compilation c = core::compile(ir::gallery::gemm());
    SimOptions opts;
    ExecutionPlan bad = c.plan;
    bad.hoists.push_back({99, 0, 0});
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
    bad = c.plan;
    bad.hoists.push_back({0, 99, 0});
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
    bad = c.plan;
    bad.hoists.push_back({0, 0, 99});
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
    bad = c.plan;
    bad.hoists.push_back({0, 0, -5});
    EXPECT_THROW(Simulator(c.program, c.nest(), bad, opts), UserError);
    // The compiler's own plan still constructs.
    EXPECT_NO_THROW(Simulator(c.program, c.nest(), c.plan, opts));
}

TEST(PlanValidation, DegradedCompilationSimulates)
{
    // An identity-tier result (the bottom of the degradation ladder)
    // must pass plan validation and simulate end to end.
    core::ResilientOptions ropts;
    ropts.base.identityTransform = true;
    core::Compilation c =
        core::compileResilient(ir::gallery::gemm(), ropts);
    EXPECT_EQ(c.tier, core::CompileTier::Identity);
    SimOptions opts;
    opts.processors = 4;
    SimStats s = core::simulate(c, opts, {{8}, {}});
    EXPECT_EQ(s.totalIterations(), 8u * 8u * 8u);
}

} // namespace
} // namespace anc::numa
