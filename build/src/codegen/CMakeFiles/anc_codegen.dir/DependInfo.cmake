
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/emit_c.cc" "src/codegen/CMakeFiles/anc_codegen.dir/emit_c.cc.o" "gcc" "src/codegen/CMakeFiles/anc_codegen.dir/emit_c.cc.o.d"
  "/root/repo/src/codegen/planner.cc" "src/codegen/CMakeFiles/anc_codegen.dir/planner.cc.o" "gcc" "src/codegen/CMakeFiles/anc_codegen.dir/planner.cc.o.d"
  "/root/repo/src/codegen/strength.cc" "src/codegen/CMakeFiles/anc_codegen.dir/strength.cc.o" "gcc" "src/codegen/CMakeFiles/anc_codegen.dir/strength.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numa/CMakeFiles/anc_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/anc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/anc_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/anc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ratmath/CMakeFiles/anc_ratmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
