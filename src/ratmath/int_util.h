/**
 * @file
 * Checked 64-bit integer arithmetic and number-theoretic helpers.
 *
 * All compiler mathematics in this library is exact. Every operation that
 * could overflow a 64-bit integer is checked (using 128-bit intermediates)
 * and raises OverflowError instead of wrapping, so loop transformations
 * are never silently incorrect.
 */

#ifndef ANC_RATMATH_INT_UTIL_H
#define ANC_RATMATH_INT_UTIL_H

#include <cstdint>

#include "ratmath/error.h"

namespace anc {

using Int = std::int64_t;
using Int128 = __int128;

/** Checked addition; throws OverflowError on 64-bit overflow. */
Int checkedAdd(Int a, Int b);

/** Checked subtraction; throws OverflowError on 64-bit overflow. */
Int checkedSub(Int a, Int b);

/** Checked multiplication; throws OverflowError on 64-bit overflow. */
Int checkedMul(Int a, Int b);

/** Checked negation; throws OverflowError for INT64_MIN. */
Int checkedNeg(Int a);

/** Narrow a 128-bit value to 64 bits; throws OverflowError if it does
 * not fit. */
Int narrow128(Int128 v);

/** Non-negative greatest common divisor; gcd(0, 0) == 0. */
Int gcdInt(Int a, Int b);

/** Least common multiple (checked); lcm(0, x) == 0. */
Int lcmInt(Int a, Int b);

/**
 * Extended Euclid: returns g = gcd(a, b) >= 0 and Bezout coefficients
 * with a*x + b*y == g.
 */
struct ExtGcd
{
    Int g; //!< gcd(a, b), non-negative
    Int x; //!< coefficient of a
    Int y; //!< coefficient of b
};
ExtGcd extGcd(Int a, Int b);

/** Floor division: largest q with q*b <= a, for any operand signs.
 * Requires b != 0; throws OverflowError for the one unrepresentable
 * quotient, INT64_MIN / -1. */
Int floorDiv(Int a, Int b);

/** Ceiling division: smallest q with q*b >= a, for any operand signs.
 * Requires b != 0; throws OverflowError for INT64_MIN / -1. */
Int ceilDiv(Int a, Int b);

/** Euclidean remainder in [0, |b|), for any operand signs including
 * b == INT64_MIN. Requires b != 0. */
Int euclidMod(Int a, Int b);

/** Exact division; throws InternalError if b does not divide a and
 * OverflowError for INT64_MIN / -1. */
Int exactDiv(Int a, Int b);

} // namespace anc

#endif // ANC_RATMATH_INT_UTIL_H
