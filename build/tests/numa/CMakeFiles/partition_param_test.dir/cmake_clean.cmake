file(REMOVE_RECURSE
  "CMakeFiles/partition_param_test.dir/partition_param_test.cc.o"
  "CMakeFiles/partition_param_test.dir/partition_param_test.cc.o.d"
  "partition_param_test"
  "partition_param_test.pdb"
  "partition_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
