/**
 * @file
 * Recursive-descent parser for the loop-nest language.
 *
 * Grammar (whitespace-insensitive, '#' comments):
 *
 *   program    := decl* for_line+ stmt+
 *   decl       := 'param' IDENT (',' IDENT)*
 *               | 'scalar' IDENT (',' IDENT)*
 *               | 'array' IDENT '(' affine (',' affine)* ')'
 *                 ['distribute' dist]
 *   dist       := 'replicated' | 'wrapped' '(' INT ')'
 *               | 'blocked' '(' INT ')' | 'block2d' '(' INT ',' INT ')'
 *   for_line   := 'for' IDENT '=' lowbound ',' highbound
 *   lowbound   := affine | 'max' '(' affine (',' affine)* ')'
 *   highbound  := affine | 'min' '(' affine (',' affine)* ')'
 *   stmt       := ref '=' expr
 *   ref        := IDENT '[' affine (',' affine)* ']'
 *   expr       := term (('+'|'-') term)*
 *   term       := factor (('*'|'/') factor)*
 *   factor     := FLOAT | INT | ref | IDENT | '(' expr ')' | '-' factor
 *   affine     := aterm (('+'|'-') aterm)*   (linear in loop variables
 *                 and parameters; '*' needs one constant operand,
 *                 '/' a constant divisor)
 *
 * In an expression, an identifier resolves to a loop variable or
 * parameter (yielding its integer value) or to a declared scalar.
 */

#ifndef ANC_DSL_PARSER_H
#define ANC_DSL_PARSER_H

#include <string>

#include "ir/loop_nest.h"

namespace anc::dsl {

/** Parse a whole program; throws UserError with line info on errors. */
ir::Program parseProgram(const std::string &source);

} // namespace anc::dsl

#endif // ANC_DSL_PARSER_H
