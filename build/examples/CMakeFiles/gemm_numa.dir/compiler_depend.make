# Empty compiler generated dependencies file for gemm_numa.
# This may be replaced when dependencies are built.
