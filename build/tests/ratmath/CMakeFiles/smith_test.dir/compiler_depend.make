# Empty compiler generated dependencies file for smith_test.
# This may be replaced when dependencies are built.
