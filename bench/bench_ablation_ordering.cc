/**
 * @file
 * Design-choice ablation: the Section 2.2 importance-ordering heuristic.
 *
 * The data access matrix places distribution-dimension subscripts first
 * so that BasisMatrix keeps them when rows conflict and the outermost
 * transformed loop aligns with data ownership. This bench disables that
 * ranking (rows order purely by frequency) and measures the cost: the
 * same pipeline, the same legality machinery, but a worse T.
 *
 * For Figure 1's program the blind ordering ranks the subscript i
 * (3 occurrences, but not a distribution dimension) above j-i and j+k,
 * leaving every access to B remote -- the quantitative argument for the
 * paper's heuristic.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/compiler.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

struct Workload
{
    const char *name;
    ir::Program prog;
    IntVec params;
    std::vector<double> scalars;
};

void
printAblation()
{
    Int n = bench::envInt("ANC_BENCH_N", 64);
    std::vector<Workload> workloads;
    workloads.push_back(
        {"figure1", ir::gallery::figure1(), {n, n / 2, 16}, {}});
    workloads.push_back({"gemm", ir::gallery::gemm(), {n}, {}});
    workloads.push_back({"syr2k", ir::gallery::syr2kBanded(),
                         {n, 16}, {1.0, 1.0}});

    std::printf("=== Ablation: Section 2.2 ordering heuristic ===\n\n");
    std::printf("%-9s %14s %14s %16s %16s %9s\n", "workload",
                "remote(hint)", "remote(blind)", "time(hint)",
                "time(blind)", "penalty");
    bench::JsonReport report("ablation_ordering");
    report.flag("N", n);
    report.flag("P", Int(16));
    for (Workload &w : workloads) {
        core::CompileOptions with, without;
        without.normalize.useDistributionHint = false;
        core::Compilation ch = core::compile(w.prog, with);
        core::Compilation cb = core::compile(w.prog, without);
        numa::SimOptions opts;
        opts.processors = 16;
        ir::Bindings binds{w.params, w.scalars};
        bench::WallTimer th;
        numa::SimStats sh = core::simulate(ch, opts, binds);
        double wall_h = th.seconds();
        bench::WallTimer tb;
        numa::SimStats sb = core::simulate(cb, opts, binds);
        double wall_b = tb.seconds();
        report.run(std::string(w.name) + "_hint", 16, wall_h,
                   sh.parallelTime());
        report.run(std::string(w.name) + "_blind", 16, wall_b,
                   sb.parallelTime());
        std::printf("%-9s %14llu %14llu %16.0f %16.0f %8.2fx\n", w.name,
                    static_cast<unsigned long long>(
                        sh.totalRemoteAccesses()),
                    static_cast<unsigned long long>(
                        sb.totalRemoteAccesses()),
                    sh.parallelTime(), sb.parallelTime(),
                    sb.parallelTime() / sh.parallelTime());
    }
    std::printf("\nwithout the heuristic the pipeline still produces "
                "legal code, but the\noutermost loop no longer aligns "
                "with the data distribution and locality is\nlost -- "
                "the penalty column is the heuristic's measured value.\n"
                "(A penalty of 1.00x means frequency alone already made "
                "the right choice.)\n\n");
    report.write();
}

void
BM_Ablation_CompileWithoutHint(benchmark::State &state)
{
    ir::Program p = ir::gallery::syr2kBanded();
    core::CompileOptions opts;
    opts.normalize.useDistributionHint = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::compile(p, opts));
}
BENCHMARK(BM_Ablation_CompileWithoutHint)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
