/**
 * @file
 * GEMM on a NUMA machine (the paper's Section 8.1 study, end to end):
 * compile the untransformed baseline and the normalized version,
 * verify bit-exact results between the sequential interpreter and the
 * parallel simulation, and print a before/after comparison.
 *
 *   $ ./examples/gemm_numa
 */

#include <cstdio>

#include "core/compiler.h"
#include "dsl/parser.h"
#include "ir/interp.h"

namespace {

const char *kSource = R"(
param N
array C(N, N) distribute wrapped(1)
array A(N, N) distribute wrapped(1)
array B(N, N) distribute wrapped(1)

for i = 0, N-1
  for j = 0, N-1
    for k = 0, N-1
      C[i, j] = C[i, j] + A[i, k] * B[k, j]
)";

} // namespace

int
main()
{
    using namespace anc;

    ir::Program program = dsl::parseProgram(kSource);

    core::CompileOptions baseline_opts;
    baseline_opts.identityTransform = true;
    core::Compilation baseline = core::compile(program, baseline_opts);
    core::Compilation normalized = core::compile(program);

    std::printf("--- untransformed node program ---\n%s\n",
                baseline.nodeProgram.c_str());
    std::printf("--- access-normalized node program ---\n%s\n",
                normalized.nodeProgram.c_str());

    // Correctness: parallel simulated execution writes exactly the
    // same doubles as the sequential interpreter.
    Int n = 24;
    ir::Bindings binds{{n}, {}};
    ir::ArrayStorage seq(program, {n});
    seq.fillDeterministic(2024);
    ir::run(program, binds, seq);

    numa::SimOptions vopts;
    vopts.processors = 6;
    vopts.executeValues = true;
    ir::ArrayStorage par(program, {n});
    par.fillDeterministic(2024);
    numa::Simulator sim(normalized.program, normalized.nest(),
                        normalized.plan, vopts);
    sim.run(binds, &par);
    bool equal = seq.data(0) == par.data(0);
    std::printf("parallel result %s sequential result\n\n",
                equal ? "MATCHES" : "DIFFERS FROM");

    // Performance: the three curves of Figure 4 at a few P.
    Int big = 96;
    double seq_time = core::sequentialTime(
        normalized, numa::MachineParams::butterflyGP1000(), {big});
    std::printf("%4s %10s %10s %10s   (N = %lld)\n", "P", "gemm",
                "gemmT", "gemmB", static_cast<long long>(big));
    for (Int p : {4, 8, 16, 28}) {
        auto speedup = [&](const core::Compilation &c, bool blocks) {
            numa::SimOptions opts;
            opts.processors = p;
            opts.blockTransfers = blocks;
            return core::simulate(c, opts, {{big}, {}}).speedup(seq_time);
        };
        std::printf("%4lld %10.2f %10.2f %10.2f\n",
                    static_cast<long long>(p),
                    speedup(baseline, false), speedup(normalized, false),
                    speedup(normalized, true));
    }
    return equal ? 0 : 1;
}
