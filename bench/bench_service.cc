/**
 * @file
 * Compilation-service throughput: replay a clustered request stream
 * (randomized programs, resubmitted through access-equivalent
 * disguises -- the svc::clusteredWorkload generator) through
 * svc::Service and report compiles/sec, cache hit rate, verdict mix,
 * and p99 request cost.
 *
 * Three things are asserted, not just printed:
 *
 *   - determinism: serving the same stream twice through two fresh
 *     services produces identical per-request verdicts and an
 *     identical cache journal;
 *   - request isolation: sweeping the deterministic fault injector
 *     across the stream never crashes the batch -- every request still
 *     ends in exactly one verdict (crashed counts are recorded in the
 *     report and must be zero);
 *   - the cache works: the clustered stream must hit at least half the
 *     time (it resubmits each cluster many times).
 *
 * Output: BENCH_service.json with the batch run, the fault-sweep run,
 * and p99 request cost in deterministic steps (steps, not wall time,
 * is what tools/check_service.py gates -- wall-clock p99 is recorded
 * for information only).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ratmath/fault.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace {

using namespace anc;

size_t
benchRequests()
{
    return size_t(bench::fullScale()
                      ? 1000
                      : bench::envInt("ANC_BENCH_REQUESTS", 240));
}

svc::ServiceOptions
serviceOpts()
{
    svc::ServiceOptions o;
    o.cacheBytes = size_t(1) << 20;
    o.deadlineSteps = 10000; // generous: nothing in-stream should miss
    return o;
}

std::vector<svc::BatchRequest> &
stream()
{
    static std::vector<svc::BatchRequest> s = [] {
        svc::WorkloadOptions w;
        w.seed = uint64_t(bench::envInt("ANC_BENCH_SEED", 20260808));
        w.clusters = size_t(bench::envInt("ANC_BENCH_CLUSTERS", 8));
        w.requests = benchRequests();
        return svc::clusteredWorkload(w);
    }();
    return s;
}

std::string
verdictSignature(const std::vector<svc::Response> &rs)
{
    std::string sig;
    for (const svc::Response &r : rs) {
        sig += r.id;
        sig += '=';
        sig += svc::verdictName(r.verdict);
        sig += r.hasKey ? "/" + r.key.hex() : "/-";
        sig += '\n';
    }
    return sig;
}

void
printServiceBench()
{
    const std::vector<svc::BatchRequest> &batch = stream();
    bench::JsonReport report("service");
    report.flag("requests", Int(batch.size()));
    report.flag("clusters", bench::envInt("ANC_BENCH_CLUSTERS", 8));
    report.flag("seed", bench::envInt("ANC_BENCH_SEED", 20260808));
    report.flag("cache_bytes", Int(serviceOpts().cacheBytes));
    report.flag("deadline_steps", Int(serviceOpts().deadlineSteps));

    // --- Timed batch replay, with per-request wall latency. ---
    svc::Service service(serviceOpts());
    obs::Histogram wallUs;
    bench::WallTimer timer;
    std::vector<svc::Response> responses;
    responses.reserve(batch.size());
    for (const svc::BatchRequest &q : batch) {
        bench::WallTimer rt;
        responses.push_back(service.serveSource(q.id, q.source));
        wallUs.record(uint64_t(rt.seconds() * 1e6));
    }
    double wallS = timer.seconds();

    const svc::PlanCache &cache = service.cache();
    uint64_t lookups = cache.hits() + cache.misses();
    double hitRate =
        lookups ? double(cache.hits()) / double(lookups) : 0.0;
    double perSec = wallS > 0 ? double(batch.size()) / wallS : 0.0;

    obs::MetricsRegistry reg;
    service.fillMetrics(reg);
    uint64_t p99Steps = 0;
    for (const auto &[name, hist] : reg.histograms())
        if (name == "svc.steps")
            p99Steps = hist.quantileUpperBound(0.99);

    std::printf("\ncompilation service replay (%zu requests, %lld "
                "clusters)\n",
                batch.size(),
                static_cast<long long>(
                    bench::envInt("ANC_BENCH_CLUSTERS", 8)));
    std::printf("  wall %.3f s  (%.0f requests/s)\n", wallS, perSec);
    std::printf("  verdicts: compiled %llu cached %llu degraded %llu "
                "shed %llu deadline-exceeded %llu\n",
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Compiled)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Cached)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Degraded)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::Shed)),
                static_cast<unsigned long long>(
                    service.verdictCount(svc::Verdict::DeadlineExceeded)));
    std::printf("  cache: hit rate %.3f  evictions %llu  bytes %zu\n",
                hitRate,
                static_cast<unsigned long long>(cache.evictions()),
                cache.bytes());
    std::printf("  p99: %llu steps, %llu us wall\n",
                static_cast<unsigned long long>(p99Steps),
                static_cast<unsigned long long>(
                    wallUs.quantileUpperBound(0.99)));

    if (hitRate < 0.5)
        throw InternalError(
            "bench_service: clustered stream hit rate " +
            std::to_string(hitRate) +
            " < 0.5: canonicalization is missing equivalent requests");

    // --- Validate-or-degrade: validation is on by default, so every
    // response that delivers a plan must carry a validated one -- a
    // single unvalidated plan in the stream is a serving-path bug,
    // not a statistic. ---
    uint64_t servedPlans = 0, unvalidated = 0;
    for (const svc::Response &r : responses) {
        if (r.verdict != svc::Verdict::Compiled &&
            r.verdict != svc::Verdict::Cached &&
            r.verdict != svc::Verdict::Degraded)
            continue;
        ++servedPlans;
        if (!r.validated)
            ++unvalidated;
    }
    std::printf("  validation: %llu served plans, %llu unvalidated "
                "(passed %llu failed %llu)\n",
                static_cast<unsigned long long>(servedPlans),
                static_cast<unsigned long long>(unvalidated),
                static_cast<unsigned long long>(
                    service.validationsPassed()),
                static_cast<unsigned long long>(
                    service.validationsFailed()));
    if (unvalidated != 0)
        throw InternalError(
            "bench_service: " + std::to_string(unvalidated) +
            " of " + std::to_string(servedPlans) +
            " served plans were not validated");

    // --- Determinism: a fresh service over the same stream must
    // reproduce verdicts, keys, and the cache journal bit for bit. ---
    svc::Service replay(serviceOpts());
    std::vector<svc::Response> responses2 = replay.runBatch(batch);
    if (verdictSignature(responses) != verdictSignature(responses2) ||
        cache.journalText() != replay.cache().journalText())
        throw InternalError("bench_service: replay diverged from the "
                            "first run");

    // --- Fault sweep: arm the injector at a spread of operation
    // indices over a slice of the stream; the batch must always
    // complete with every request in a definite verdict. ---
    std::vector<svc::BatchRequest> slice(
        batch.begin(), batch.begin() + std::min<size_t>(batch.size(), 24));
    uint64_t crashed = 0, faultRuns = 0, faultShed = 0, faultDegraded = 0;
    for (uint64_t nth = 5; nth <= 2000; nth += 95) {
        ++faultRuns;
        try {
            svc::Service s(serviceOpts());
            fault::armAt(nth, nth % 190 == 0 ? fault::Kind::Math
                                             : fault::Kind::Overflow);
            std::vector<svc::Response> rs = s.runBatch(slice);
            fault::disarm();
            if (rs.size() != slice.size())
                ++crashed;
            faultShed += s.verdictCount(svc::Verdict::Shed);
            faultDegraded += s.verdictCount(svc::Verdict::Degraded);
        } catch (...) {
            fault::disarm();
            ++crashed;
        }
    }
    std::printf("  fault sweep: %llu runs, %llu crashed, %llu shed, "
                "%llu degraded\n",
                static_cast<unsigned long long>(faultRuns),
                static_cast<unsigned long long>(crashed),
                static_cast<unsigned long long>(faultShed),
                static_cast<unsigned long long>(faultDegraded));
    if (crashed != 0)
        throw InternalError("bench_service: a fault crashed the batch");

    report.metrics(reg);
    report.run("batch", Int(batch.size()), wallS, 0.0, 0.0,
               {{"requests_per_s", std::to_string(perSec)},
                {"hit_rate", std::to_string(hitRate)},
                {"shed", std::to_string(service.verdictCount(
                             svc::Verdict::Shed))},
                {"deadline_miss",
                 std::to_string(service.verdictCount(
                     svc::Verdict::DeadlineExceeded))},
                {"served_plans", std::to_string(servedPlans)},
                {"unvalidated", std::to_string(unvalidated)},
                {"p99_steps", std::to_string(p99Steps)},
                {"p99_wall_us",
                 std::to_string(wallUs.quantileUpperBound(0.99))}});
    report.run("fault_sweep", Int(slice.size()), 0.0, 0.0, 0.0,
               {{"fault_runs", std::to_string(faultRuns)},
                {"crashed", std::to_string(crashed)},
                {"shed", std::to_string(faultShed)},
                {"degraded", std::to_string(faultDegraded)}});
    report.write();
}

void
BM_Service_CachedRequest(benchmark::State &state)
{
    svc::Service s(serviceOpts());
    const svc::BatchRequest &q = stream().front();
    s.serveSource(q.id, q.source); // warm the cache line
    for (auto _ : state)
        benchmark::DoNotOptimize(s.serveSource(q.id, q.source));
}
BENCHMARK(BM_Service_CachedRequest)->Unit(benchmark::kMicrosecond);

void
BM_Service_ColdCompile(benchmark::State &state)
{
    const svc::BatchRequest &q = stream().front();
    for (auto _ : state) {
        svc::Service s(serviceOpts());
        benchmark::DoNotOptimize(s.serveSource(q.id, q.source));
    }
}
BENCHMARK(BM_Service_ColdCompile)->Unit(benchmark::kMicrosecond);

void
BM_Service_CanonicalizeAndKey(benchmark::State &state)
{
    ir::Program prog = dsl::parseProgram(stream().front().source);
    svc::ServiceOptions o = serviceOpts();
    for (auto _ : state) {
        svc::CanonicalForm c = svc::canonicalize(prog);
        benchmark::DoNotOptimize(
            svc::planKey(c, o.machine, o.compile.base));
    }
}
BENCHMARK(BM_Service_CanonicalizeAndKey)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printServiceBench();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
