file(REMOVE_RECURSE
  "CMakeFiles/anc_ir.dir/affine.cc.o"
  "CMakeFiles/anc_ir.dir/affine.cc.o.d"
  "CMakeFiles/anc_ir.dir/gallery.cc.o"
  "CMakeFiles/anc_ir.dir/gallery.cc.o.d"
  "CMakeFiles/anc_ir.dir/interp.cc.o"
  "CMakeFiles/anc_ir.dir/interp.cc.o.d"
  "CMakeFiles/anc_ir.dir/loop_nest.cc.o"
  "CMakeFiles/anc_ir.dir/loop_nest.cc.o.d"
  "CMakeFiles/anc_ir.dir/printer.cc.o"
  "CMakeFiles/anc_ir.dir/printer.cc.o.d"
  "libanc_ir.a"
  "libanc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
