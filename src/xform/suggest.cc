#include "xform/suggest.h"

#include <sstream>

#include "deps/dependence.h"
#include "ratmath/linalg.h"
#include "xform/access_matrix.h"
#include "xform/basis.h"
#include "xform/legal.h"
#include "xform/transform.h"

namespace anc::xform {

namespace {

/** Primitive integer linear part of a subscript, or empty if
 * loop-invariant. */
IntVec
linearPart(const ir::AffineExpr &e)
{
    RatVec lin(e.numVars());
    bool zero = true;
    for (size_t k = 0; k < e.numVars(); ++k) {
        lin[k] = e.varCoeff(k);
        if (!lin[k].isZero())
            zero = false;
    }
    if (zero)
        return {};
    return scaleToPrimitiveIntegers(lin);
}

bool
sameLine(const IntVec &a, const IntVec &b)
{
    if (a.size() != b.size())
        return false;
    IntVec neg = b;
    for (Int &v : neg)
        v = checkedNeg(v);
    return a == b || a == neg;
}

} // namespace

ir::Program
DistributionSuggestion::applyTo(const ir::Program &prog) const
{
    if (arrays.size() != prog.arrays.size())
        throw InternalError("suggestion does not match program");
    ir::Program out = prog;
    for (size_t a = 0; a < arrays.size(); ++a)
        out.arrays[a].dist = arrays[a].dist;
    return out;
}

DistributionSuggestion
suggestDistributions(const ir::Program &prog)
{
    prog.validate();
    size_t n = prog.nest.depth();

    // Distribution-blind access matrix: rank purely by frequency, since
    // the declared distributions (if any) are exactly what we are about
    // to replace.
    AccessMatrixInfo access = buildAccessMatrix(prog, false);

    deps::DependenceInfo dinfo = deps::analyzeDependences(prog);
    IntMatrix dep = dinfo.matrix(n);

    BasisResult basis = basisMatrix(access.matrix);
    IntMatrix legal = legalBasis(basis.basis, dep);
    IntMatrix t = legalInvertible(legal, dep);
    if (dinfo.imprecise && !deps::preservesLexSign(t, dinfo.families))
        t = IntMatrix::identity(n);

    DistributionSuggestion out;
    out.transform = t;

    std::ostringstream why;
    for (size_t a = 0; a < prog.arrays.size(); ++a) {
        const ir::ArrayDecl &decl = prog.arrays[a];
        // For each dimension, the earliest row of T matched by ANY
        // reference's subscript at that dimension.
        std::optional<size_t> best_row;
        size_t best_dim = 0;
        for (size_t d = 0; d < decl.numDims(); ++d) {
            std::optional<size_t> dim_row;
            for (const ir::Statement &s : prog.nest.body()) {
                s.forEachRef([&](const ir::ArrayRef &r, bool) {
                    if (r.arrayId != a)
                        return;
                    IntVec lin = linearPart(r.subscripts[d]);
                    if (lin.empty())
                        return;
                    for (size_t row = 0; row < n; ++row) {
                        if (sameLine(lin, t.row(row))) {
                            if (!dim_row || row < *dim_row)
                                dim_row = row;
                            break;
                        }
                    }
                });
            }
            if (dim_row && (!best_row || *dim_row < *best_row)) {
                best_row = dim_row;
                best_dim = d;
            }
        }
        ArraySuggestion s;
        s.matchedRow = best_row;
        if (best_row) {
            s.dist = ir::DistributionSpec::wrapped(best_dim);
            why << "  " << decl.name << ": wrapped(dim " << best_dim
                << ") -- subscript matches loop "
                << newLoopVarName(*best_row)
                << (*best_row == 0 ? " (local under owner-aligned "
                                     "partitioning)"
                                   : " (block-transferable)")
                << "\n";
        } else {
            s.dist = ir::DistributionSpec::replicated();
            why << "  " << decl.name
                << ": replicated -- no subscript matches a row of T\n";
        }
        out.arrays.push_back(std::move(s));
    }
    out.rationale = why.str();
    return out;
}

} // namespace anc::xform
