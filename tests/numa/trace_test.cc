/**
 * @file
 * Trace determinism and single-source-of-truth tests.
 *
 * The simulator's trace events are stamped from the simulated clock at
 * outer-slice boundaries, where the PR 1/3 determinism contract makes
 * every execution strategy agree bit-for-bit -- so the canonical
 * rendering of a run's events must be byte-identical across host thread
 * counts, fastInner on/off, and under injected machine faults. The
 * metrics registry is filled from the finished SimStats, so its values
 * must equal the stats exactly (no second accounting to drift).
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/profile.h"
#include "ir/gallery.h"
#include "numa/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anc::numa {
namespace {

using core::Compilation;

struct TraceRun
{
    std::string events; //!< canonical one-per-line rendering
    SimStats stats;
};

TraceRun
traceRun(const Compilation &c, const ir::Bindings &binds, Int p,
         Int host_threads, bool fast_inner,
         const FaultOptions &faults = {})
{
    obs::Trace trace;
    SimOptions opts;
    opts.processors = p;
    opts.hostThreads = host_threads;
    opts.fastInner = fast_inner;
    opts.faults = faults;
    opts.perReference = true;
    opts.trace = &trace;
    opts.tracePid = trace.process("sim");
    TraceRun r;
    r.stats = core::simulate(c, opts, binds);
    r.events = trace.renderEvents(opts.tracePid);
    return r;
}

void
expectByteIdenticalAcrossStrategies(const Compilation &c,
                                    const ir::Bindings &binds, Int p,
                                    const FaultOptions &faults = {})
{
    TraceRun base = traceRun(c, binds, p, 1, false, faults);
    ASSERT_FALSE(base.events.empty());
    for (Int threads : {1, 4}) {
        for (bool fast : {false, true}) {
            TraceRun r = traceRun(c, binds, p, threads, fast, faults);
            SCOPED_TRACE("hostThreads=" + std::to_string(threads) +
                         " fastInner=" + std::to_string(fast));
            EXPECT_EQ(base.events, r.events);
        }
    }
}

TEST(TraceDeterminism, GemmByteIdenticalAcrossStrategies)
{
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    for (Int p : {4, 32})
        expectByteIdenticalAcrossStrategies(c, binds, p);
}

TEST(TraceDeterminism, Syr2kByteIdenticalAcrossStrategies)
{
    Compilation c = core::compile(ir::gallery::syr2kBanded());
    ir::Bindings binds{{17, 5}, {1.5, 0.5}};
    expectByteIdenticalAcrossStrategies(c, binds, 7);
}

TEST(TraceDeterminism, ByteIdenticalUnderInjectedFaults)
{
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    FaultOptions f = parseFaultSpec("drop-transfer/3");
    expectByteIdenticalAcrossStrategies(c, binds, 8, f);
    // Fault events actually fired: the trace carries retry instants.
    TraceRun r = traceRun(c, binds, 8, 1, true, f);
    EXPECT_GT(r.stats.faultReport().transferRetries, 0u);
    EXPECT_NE(r.events.find("\"retry\""), std::string::npos);
}

TEST(TraceDeterminism, KilledProcessorLeavesInstantEvent)
{
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    FaultOptions f = parseFaultSpec("kill:2@1");
    expectByteIdenticalAcrossStrategies(c, binds, 6, f);
    TraceRun r = traceRun(c, binds, 6, 4, true, f);
    EXPECT_NE(r.events.find("\"killed\""), std::string::npos);
    EXPECT_NE(r.events.find("\"adopt\""), std::string::npos);
}

TEST(TraceDeterminism, TracedRunLeavesStatsUnchanged)
{
    // Tracing is observation only: the traced run's stats equal an
    // untraced run's bit-for-bit.
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    SimOptions plain;
    plain.processors = 8;
    SimStats off = core::simulate(c, plain, binds);
    TraceRun on = traceRun(c, binds, 8, 1, true);
    ASSERT_EQ(off.perProc.size(), on.stats.perProc.size());
    for (size_t i = 0; i < off.perProc.size(); ++i) {
        EXPECT_EQ(off.perProc[i].localAccesses,
                  on.stats.perProc[i].localAccesses);
        EXPECT_EQ(off.perProc[i].remoteAccesses,
                  on.stats.perProc[i].remoteAccesses);
        EXPECT_EQ(off.perProc[i].time, on.stats.perProc[i].time);
    }
}

TEST(PerReference, SumsMatchAggregateCounters)
{
    // The per-reference vectors are charged beside the aggregate
    // counters at every site; their sums are exact invariants.
    for (bool identity : {false, true}) {
        core::CompileOptions copts;
        copts.identityTransform = identity;
        Compilation c = core::compile(ir::gallery::gemm(), copts);
        ir::Bindings binds{{24}, {}};
        for (bool blocks : {false, true}) {
            SimOptions opts;
            opts.processors = 8;
            opts.blockTransfers = blocks;
            opts.perReference = true;
            SimStats s = core::simulate(c, opts, binds);
            ASSERT_FALSE(s.refNames.empty());
            for (const ProcStats &p : s.perProc) {
                ASSERT_EQ(p.localByRef.size(), s.refNames.size());
                uint64_t loc = 0, rem = 0, blk = 0;
                for (size_t r = 0; r < s.refNames.size(); ++r) {
                    loc += p.localByRef[r];
                    rem += p.remoteByRef[r];
                    blk += p.blockElementsByRef[r];
                }
                EXPECT_EQ(loc, p.localAccesses);
                EXPECT_EQ(rem, p.remoteAccesses);
                EXPECT_EQ(blk, p.blockElements);
            }
        }
    }
}

TEST(PerReference, SumsMatchUnderFaults)
{
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    SimOptions opts;
    opts.processors = 8;
    opts.perReference = true;
    opts.faults = parseFaultSpec("drop-transfer/3,remote-fail@2");
    SimStats s = core::simulate(c, opts, binds);
    for (const ProcStats &p : s.perProc) {
        uint64_t loc = 0, rem = 0, blk = 0;
        for (size_t r = 0; r < s.refNames.size(); ++r) {
            loc += p.localByRef[r];
            rem += p.remoteByRef[r];
            blk += p.blockElementsByRef[r];
        }
        EXPECT_EQ(loc, p.localAccesses);
        EXPECT_EQ(rem, p.remoteAccesses);
        EXPECT_EQ(blk, p.blockElements);
    }
}

TEST(PerReference, OffByDefaultLeavesVectorsEmpty)
{
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{24}, {}};
    SimOptions opts;
    opts.processors = 4;
    SimStats s = core::simulate(c, opts, binds);
    EXPECT_TRUE(s.refNames.empty());
    for (const ProcStats &p : s.perProc) {
        EXPECT_TRUE(p.localByRef.empty());
        EXPECT_TRUE(p.remoteByRef.empty());
        EXPECT_TRUE(p.blockElementsByRef.empty());
    }
}

TEST(Metrics, GemmP32MatchesSimStatsExactly)
{
    // The acceptance check: the registry is derived from SimStats, so
    // remote / local / block counts agree exactly -- one source of
    // truth, no double counting.
    Compilation c = core::compile(ir::gallery::gemm());
    ir::Bindings binds{{32}, {}};
    SimOptions opts;
    opts.processors = 32;
    opts.perReference = true;
    SimStats s = core::simulate(c, opts, binds);

    obs::MetricsRegistry reg;
    core::recordSimMetrics(reg, s, opts.machine, "sim.p32.");
    EXPECT_EQ(reg.value("sim.p32.remote"), s.totalRemoteAccesses());
    EXPECT_EQ(reg.value("sim.p32.local"), s.totalLocalAccesses());
    EXPECT_EQ(reg.value("sim.p32.block_transfers"),
              s.totalBlockTransfers());
    EXPECT_EQ(reg.value("sim.p32.block_elements"),
              s.totalBlockElements());
    EXPECT_EQ(reg.value("sim.p32.block_bytes"),
              s.totalBlockElements() *
                  uint64_t(opts.machine.elementSize));
    EXPECT_EQ(reg.value("sim.p32.iterations"), s.totalIterations());

    // Per-reference counters re-sum to the same aggregates.
    uint64_t ref_remote = 0, ref_local = 0;
    for (const std::string &name : s.refNames) {
        ref_local += reg.value("sim.p32.ref." + name + ".local");
        ref_remote += reg.value("sim.p32.ref." + name + ".remote");
    }
    EXPECT_EQ(ref_remote, s.totalRemoteAccesses());
    EXPECT_EQ(ref_local, s.totalLocalAccesses());

    // And the rendered table's totals row is consistent.
    std::string table = core::refTable(s);
    EXPECT_NE(table.find("total"), std::string::npos);
    EXPECT_NE(table.find(std::to_string(s.totalRemoteAccesses())),
              std::string::npos);
}

} // namespace
} // namespace anc::numa
