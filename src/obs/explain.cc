#include "obs/explain.h"

#include <sstream>

#include "obs/trace.h"

namespace anc::obs {

namespace {

const char *
boolStr(bool b)
{
    return b ? "true" : "false";
}

double
totalOf(const std::vector<double> &v)
{
    double t = 0;
    for (double x : v)
        t += x;
    return t;
}

std::string
candidateJson(const ExplainCandidate &c)
{
    std::string s = "{\"accessRow\":" + jsonNum(c.accessRow);
    s += ",\"coeffs\":" + jsonStr(c.coeffs);
    s += ",\"origin\":" + jsonStr(c.origin);
    s += ",\"count\":" + jsonNum(c.count);
    s += ",\"distDim\":";
    s += boolStr(c.distDim);
    s += ",\"stage\":" + jsonStr(c.stage);
    s += ",\"verdict\":" + jsonStr(c.verdict);
    s += ",\"reason\":" + jsonStr(c.reason);
    s += ",\"violatedDep\":" + jsonNum(c.violatedDep);
    s += ",\"depsCarried\":" + jsonNum(c.depsCarried);
    s += "}";
    return s;
}

std::string
refJson(const ExplainRefScore &r)
{
    std::string s = "{\"ref\":" + jsonStr(r.ref);
    s += ",\"strides\":" + jsonStr(r.strides);
    s += ",\"constantStride\":";
    s += boolStr(r.constantStride);
    s += ",\"singleDimension\":";
    s += boolStr(r.singleDimension);
    s += ",\"verdict\":" + jsonStr(r.verdict);
    s += "}";
    return s;
}

template <class T>
std::string
numArrayJson(const std::vector<T> &v)
{
    std::string s = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            s += ",";
        s += jsonNum(v[i]);
    }
    s += "]";
    return s;
}

std::string
searchScoreJson(const ExplainSearchScore &t)
{
    std::string s = "{\"transform\":" + jsonStr(t.transform);
    s += ",\"origin\":" + jsonStr(t.origin);
    s += ",\"scheme\":" + jsonStr(t.scheme);
    s += ",\"locality\":" + jsonNum(t.locality);
    s += ",\"simTimesUs\":" + numArrayJson(t.simTimesUs);
    s += ",\"totalUs\":" + jsonNum(t.totalUs);
    s += ",\"verdict\":" + jsonStr(t.verdict);
    s += ",\"detail\":" + jsonStr(t.detail);
    s += "}";
    return s;
}

std::string
searchJson(const ExplainSearch &se)
{
    std::string s = "{\"ran\":";
    s += boolStr(se.ran);
    s += ",\"improved\":";
    s += boolStr(se.improved);
    s += ",\"enumerated\":" + jsonNum(se.enumerated);
    s += ",\"scored\":" + jsonNum(se.scored);
    s += ",\"pruned\":" + jsonNum(se.pruned);
    s += ",\"processorSweep\":" + numArrayJson(se.processorSweep);
    s += ",\"heuristicTimesUs\":" + numArrayJson(se.heuristicTimesUs);
    s += ",\"winnerTimesUs\":" + numArrayJson(se.winnerTimesUs);
    s += ",\"winnerOrigin\":" + jsonStr(se.winnerOrigin);
    s += ",\"tieBreak\":" + jsonStr(se.tieBreak);
    s += ",\"trail\":[";
    for (size_t i = 0; i < se.trail.size(); ++i) {
        if (i)
            s += ",";
        s += searchScoreJson(se.trail[i]);
    }
    s += "]}";
    return s;
}

} // namespace

std::string
ExplainRecord::renderJson() const
{
    std::string s = "{\"tier\":" + jsonStr(tier);
    s += ",\"degraded\":";
    s += boolStr(degraded);
    s += ",\"partial\":";
    s += boolStr(partial);
    s += ",\"transform\":" + jsonStr(transform);
    s += ",\"unimodular\":";
    s += boolStr(unimodular);
    s += ",\"plan\":{\"scheme\":" + jsonStr(scheme);
    s += ",\"rationale\":" + jsonStr(planRationale);
    s += ",\"tieBreak\":" + jsonStr(tieBreak);
    s += ",\"outerParallel\":";
    s += boolStr(outerParallel);
    s += ",\"hoists\":" + jsonNum(hoists);
    s += "},\"search\":" + searchJson(search);
    s += ",\"candidates\":[";
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (i)
            s += ",";
        s += candidateJson(candidates[i]);
    }
    s += "],\"refs\":[";
    for (size_t i = 0; i < refs.size(); ++i) {
        if (i)
            s += ",";
        s += refJson(refs[i]);
    }
    s += "],\"notes\":[";
    for (size_t i = 0; i < notes.size(); ++i) {
        if (i)
            s += ",";
        s += jsonStr(notes[i]);
    }
    s += "]}";
    return s;
}

std::string
ExplainRecord::renderText() const
{
    std::ostringstream os;
    os << "plan explanation (tier=" << tier
       << (degraded ? ", degraded" : "") << (partial ? ", partial" : "")
       << ")\n";
    os << "chosen T: " << transform
       << (unimodular ? "  (unimodular)" : "") << "\n";
    os << "candidate rows:\n";
    for (const ExplainCandidate &c : candidates) {
        os << "  ";
        if (c.accessRow >= 0)
            os << "row " << c.accessRow << " ";
        os << c.coeffs << "  " << c.origin;
        if (c.count)
            os << "  x" << c.count;
        if (c.distDim)
            os << "  dist";
        os << "  [" << c.stage << "] " << c.verdict;
        if (!c.reason.empty())
            os << ": " << c.reason;
        if (c.violatedDep >= 0)
            os << " (dependence column " << c.violatedDep << ")";
        if (c.depsCarried)
            os << " (carries " << c.depsCarried << " dependence"
               << (c.depsCarried == 1 ? "" : "s") << ")";
        os << "\n";
    }
    os << "partition: " << scheme << " -- " << planRationale << "\n";
    if (!tieBreak.empty())
        os << "tie-break: " << tieBreak << "\n";
    os << "outer loop: "
       << (outerParallel ? "parallel" : "needs synchronization") << "\n";
    os << "block transfers: " << hoists << "\n";
    if (search.ran) {
        os << "plan search: " << search.enumerated << " candidate"
           << (search.enumerated == 1 ? "" : "s") << ", " << search.scored
           << " scored, " << search.pruned << " pruned\n";
        os << "  heuristic total " << jsonNum(totalOf(search.heuristicTimesUs))
           << " us; winner '" << search.winnerOrigin << "' total "
           << jsonNum(totalOf(search.winnerTimesUs)) << " us ("
           << (search.improved ? "improved" : "no improvement") << ")\n";
        if (!search.tieBreak.empty())
            os << "  search tie-break: " << search.tieBreak << "\n";
        for (const ExplainSearchScore &t : search.trail) {
            os << "  " << t.transform << "  " << t.origin;
            if (!t.scheme.empty())
                os << "  " << t.scheme;
            if (t.totalUs >= 0)
                os << "  total " << jsonNum(t.totalUs) << " us";
            os << "  -> " << t.verdict;
            if (!t.detail.empty())
                os << ": " << t.detail;
            os << "\n";
        }
    }
    if (!refs.empty()) {
        os << "reference scores (innermost strides under T):\n";
        for (const ExplainRefScore &r : refs) {
            os << "  " << r.ref << "  " << r.strides;
            if (r.constantStride)
                os << "  const-stride";
            if (r.singleDimension)
                os << "  single-dim";
            os << "  -> " << r.verdict << "\n";
        }
    }
    for (const std::string &n : notes)
        os << "note: " << n << "\n";
    return os.str();
}

} // namespace anc::obs
