
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cc" "src/ir/CMakeFiles/anc_ir.dir/affine.cc.o" "gcc" "src/ir/CMakeFiles/anc_ir.dir/affine.cc.o.d"
  "/root/repo/src/ir/gallery.cc" "src/ir/CMakeFiles/anc_ir.dir/gallery.cc.o" "gcc" "src/ir/CMakeFiles/anc_ir.dir/gallery.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/ir/CMakeFiles/anc_ir.dir/interp.cc.o" "gcc" "src/ir/CMakeFiles/anc_ir.dir/interp.cc.o.d"
  "/root/repo/src/ir/loop_nest.cc" "src/ir/CMakeFiles/anc_ir.dir/loop_nest.cc.o" "gcc" "src/ir/CMakeFiles/anc_ir.dir/loop_nest.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/anc_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/anc_ir.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ratmath/CMakeFiles/anc_ratmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
