/**
 * @file
 * Unit tests for exact dependence-family legality (preservesLexSign).
 */

#include <gtest/gtest.h>

#include <random>

#include "../ratmath/test_util.h"
#include "deps/dependence.h"
#include "ir/builder.h"
#include "ir/gallery.h"
#include "ir/interp.h"
#include "xform/classic.h"
#include "xform/normalize.h"

namespace anc::deps {
namespace {

DependenceFamily
constant(IntVec d)
{
    return {std::move(d), IntMatrix(3, 0)};
}

TEST(FamilyConstant, SignPreservation)
{
    IntMatrix id = IntMatrix::identity(3);
    EXPECT_TRUE(preservesLexSign(id, constant({0, 0, 1})));
    EXPECT_TRUE(preservesLexSign(id, constant({0, 0, 0})));

    // Reversing the innermost loop flips (0,0,1): rejected.
    IntMatrix rev = xform::reversal(3, 2);
    EXPECT_FALSE(preservesLexSign(rev, constant({0, 0, 1})));
    // But a distance in another loop is unaffected.
    EXPECT_TRUE(preservesLexSign(rev, constant({1, 0, -1})));

    // Interchange moves the carried loop; still lex-positive.
    EXPECT_TRUE(preservesLexSign(xform::interchange(3, 0, 2),
                                 constant({0, 0, 1})));
}

TEST(FamilyLattice, GemmFamilyUnderInterchange)
{
    // GEMM's C[i,j] family: d0 = 0, generator (0,0,1). Legal under
    // i<->j interchange, illegal under k reversal.
    DependenceFamily f{{0, 0, 0}, IntMatrix{{0}, {0}, {1}}};
    EXPECT_TRUE(preservesLexSign(xform::interchange(3, 0, 1), f));
    EXPECT_FALSE(preservesLexSign(xform::reversal(3, 2), f));
    EXPECT_TRUE(preservesLexSign(IntMatrix::identity(3), f));
}

TEST(FamilyLattice, CosetMembersBeyondRepresentatives)
{
    // Family d = (1, t): representatives (1, 0) and (0, 1) survive a
    // skew T = [[1,0],[s,1]] for any s, but members (1, t) with very
    // negative t map to (1, s + t)... both lex-positive. Construct the
    // genuinely dangerous case: T = [[0,1],[1,0]] (interchange) maps
    // (1, t) to (t, 1): for t < 0 the image is lex-negative while the
    // source is lex-positive. The vector tests pass representatives
    // (1,0)->(0,1) ok and (0,1)->(1,0) ok -- only the family check
    // catches it.
    DependenceFamily f{{1, 0}, IntMatrix{{0}, {1}}};
    IntMatrix swap{{0, 1}, {1, 0}};
    // The representative-based matrix check is fooled:
    IntMatrix reps = IntMatrix::fromColumns(
        std::vector<IntVec>{{1, 0}, {0, 1}});
    EXPECT_TRUE(isLegalTransformation(swap, reps));
    // The family check is not:
    EXPECT_FALSE(preservesLexSign(swap, f));
    // Identity is of course fine.
    EXPECT_TRUE(preservesLexSign(IntMatrix::identity(2), f));
}

TEST(FamilyLattice, TwoGenerators)
{
    // d = (t, s) for all integers t, s: only transformations that
    // preserve lex order on ALL of Z^2 qualify -- lower-triangular with
    // positive diagonal.
    DependenceFamily f{{0, 0}, IntMatrix::identity(2)};
    EXPECT_TRUE(preservesLexSign(IntMatrix::identity(2), f));
    EXPECT_TRUE(preservesLexSign(IntMatrix{{1, 0}, {3, 2}}, f));
    EXPECT_FALSE(preservesLexSign(IntMatrix{{1, 1}, {0, 1}}, f));
    EXPECT_FALSE(preservesLexSign(IntMatrix{{0, 1}, {1, 0}}, f));
    EXPECT_FALSE(preservesLexSign(IntMatrix{{-1, 0}, {0, 1}}, f));
}

TEST(FamilyLattice, ScalingIsHarmless)
{
    // Positive diagonal scaling never changes a lex sign.
    DependenceFamily f{{2, -1}, IntMatrix{{4}, {1}}};
    EXPECT_TRUE(preservesLexSign(xform::scaling(2, 0, 3), f));
    EXPECT_TRUE(preservesLexSign(
        xform::scaling(2, 0, 2) * xform::scaling(2, 1, 5), f));
}

TEST(FamilyAnalysis, FamiliesPopulated)
{
    ir::Program p = ir::gallery::gemm();
    DependenceInfo info = analyzeDependences(p);
    ASSERT_FALSE(info.families.empty());
    // Every family of GEMM is the k-axis lattice.
    for (const DependenceFamily &f : info.families) {
        EXPECT_TRUE(isZero(f.d0));
        ASSERT_EQ(f.gens.cols(), 1u);
        IntVec g = f.gens.column(0);
        if (g[2] < 0)
            for (Int &v : g)
                v = -v;
        EXPECT_EQ(g, (IntVec{0, 0, 1}));
    }
    EXPECT_TRUE(preservesLexSign(
        IntMatrix{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}, info.families));
}

TEST(FamilyProperty, AgreesWithBruteForceOnSmallFamilies)
{
    // Randomized cross-check: enumerate family members in a window and
    // compare lex signs directly against the analytic answer.
    std::mt19937 rng(112233);
    std::uniform_int_distribution<Int> small(-2, 2);
    int rejected = 0, accepted = 0;
    for (int trial = 0; trial < 300; ++trial) {
        size_t n = 2 + trial % 2;
        IntVec d0(n);
        for (Int &v : d0)
            v = small(rng);
        size_t k = 1 + trial % 2;
        IntMatrix g(n, k);
        for (size_t i = 0; i < n; ++i)
            for (size_t c = 0; c < k; ++c)
                g(i, c) = small(rng);
        DependenceFamily fam{d0, g};
        IntMatrix t = testutil::randomInvertibleMatrix(rng, n, -2, 2);

        bool analytic = preservesLexSign(t, fam);
        // Brute force over a window of z values.
        bool violated = false;
        Int w = 6;
        std::function<void(size_t, IntVec &)> walk = [&](size_t c,
                                                         IntVec &z) {
            if (violated)
                return;
            if (c == k) {
                IntVec d = d0;
                for (size_t i = 0; i < n; ++i)
                    for (size_t q = 0; q < k; ++q)
                        d[i] += g(i, q) * z[q];
                if (isZero(d))
                    return;
                IntVec td = t.apply(d);
                if (leadingSign(td) != leadingSign(d))
                    violated = true;
                return;
            }
            for (Int v = -w; v <= w && !violated; ++v) {
                z[c] = v;
                walk(c + 1, z);
            }
        };
        IntVec z(k, 0);
        walk(0, z);

        if (violated) {
            // Any witnessed violation must be caught analytically.
            EXPECT_FALSE(analytic) << "trial " << trial;
            ++rejected;
        } else if (analytic) {
            ++accepted;
        }
        // (analytic false without a window witness is allowed: the
        // check is conservative and the witness may lie outside the
        // window.)
    }
    EXPECT_GT(rejected, 50);
    EXPECT_GT(accepted, 20);
}

TEST(FamilyFallback, PipelineFallsBackWhenFamiliesReject)
{
    // X[0, j] = X[0, j+1] + ... style program where the write/read pair
    // has an imprecise family; craft one where the access-driven
    // transformation would reorder family members. The fuzz suite
    // covers this broadly; here is a deterministic instance.
    ir::ProgramBuilder b(2);
    b.array("X", {b.cst(16), b.cst(16)}, ir::DistributionSpec::wrapped(0));
    b.loop("i", b.cst(0), b.cst(5));
    b.loop("j", b.cst(0), b.cst(5));
    auto vi = b.var(0), vj = b.var(1);
    // write X[j, i], read X[j, i+1]: access matrix wants (j, i) order
    // (j is the distribution subscript), i.e. interchange; dependence
    // family: write (i1,j1) touches (j1, i1), read (i2,j2) touches
    // (j2, i2+1): j1 = j2, i1 = i2 + 1 -> d = (i2-i1, j2-j1) = (-1, 0)
    // ... lex-negative: the anti direction, distance (1, 0) exactly.
    // Interchange maps (1,0) to (0,1): still legal. Add the k-style
    // free axis by writing X[j, 0]: family (t, 0) under interchange
    // maps to (0, t): sign preserved. Use X[j, 0] read X[j+1, 0]:
    // write/read rows rank-deficient -> family with generators.
    b.assign(b.ref(0, {vj, b.cst(0)}),
             ir::Expr::binary(
                 '+',
                 ir::Expr::arrayRead(b.ref(0, {vj + b.cst(1), b.cst(0)})),
                 ir::Expr::indexValue(vi)));
    ir::Program p = b.build();
    DependenceInfo info = analyzeDependences(p);
    EXPECT_TRUE(info.imprecise);
    // Whatever the pipeline picks must preserve every family.
    xform::NormalizeResult r = xform::accessNormalize(p);
    EXPECT_TRUE(preservesLexSign(r.transform, info.families));
    // And transformed execution still matches.
    ir::ArrayStorage seq(p, {}), par(p, {});
    seq.fillDeterministic(1);
    par.fillDeterministic(1);
    ir::run(p, {{}, {}}, seq);
    r.nest->run({{}, {}}, par);
    EXPECT_EQ(seq.data(0), par.data(0));
}

} // namespace
} // namespace anc::deps
