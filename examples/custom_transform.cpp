/**
 * @file
 * Driving the transformation engine by hand: the Section 3 worked
 * examples. Shows that invertible (non-unimodular) matrices compose the
 * classic repertoire -- interchange, reversal, skewing -- with loop
 * scaling, and how the integer lattice supplies strides and bounds.
 *
 *   $ ./examples/custom_transform
 */

#include <cstdio>

#include "deps/dependence.h"
#include "ir/gallery.h"
#include "ir/printer.h"
#include "ratmath/linalg.h"
#include "xform/classic.h"
#include "xform/transform.h"

int
main()
{
    using namespace anc;

    // --- loop scaling: for i = 1,3: A[2i] = i  (Section 3) ---
    {
        ir::Program p = ir::gallery::scalingExample();
        std::printf("--- loop scaling ---\nsource:\n%s",
                    ir::printNest(p.nest, p).c_str());
        xform::TransformedNest tn =
            xform::applyTransform(p, xform::scaling(1, 0, 2));
        std::printf("scaled (T = [2]):\n%s\n",
                    xform::printTransformedNest(tn, p).c_str());
    }

    // --- the 2x2 non-unimodular example (Section 3) ---
    {
        ir::Program p = ir::gallery::section3Example();
        IntMatrix t{{2, 4}, {1, 5}};
        std::printf("--- T = [[2,4],[1,5]], det 6 ---\nsource:\n%s",
                    ir::printNest(p.nest, p).c_str());
        xform::TransformedNest tn = xform::applyTransform(p, t);
        std::printf("transformed:\n%s",
                    xform::printTransformedNest(tn, p).c_str());
        std::printf("lattice HNF (stride source):\n%s",
                    tn.lattice().hnf().str().c_str());
        std::printf("visited (u, v) -> source (i, j):\n");
        tn.forEachIteration({}, [&](const IntVec &u) {
            IntVec x = tn.oldIteration(u);
            std::printf("  (%2lld, %2lld) -> (%lld, %lld)\n",
                        static_cast<long long>(u[0]),
                        static_cast<long long>(u[1]),
                        static_cast<long long>(x[0]),
                        static_cast<long long>(x[1]));
        });
        std::printf("\n");
    }

    // --- composing classic transformations on GEMM ---
    {
        ir::Program p = ir::gallery::gemm();
        IntMatrix dep = deps::analyzeDependences(p).matrix(3);
        struct Case
        {
            const char *name;
            IntMatrix t;
        };
        std::vector<Case> cases = {
            {"interchange(i,k)", xform::interchange(3, 0, 2)},
            {"reverse k", xform::reversal(3, 2)},
            {"skew j by i", xform::skew(3, 1, 0, 1)},
            {"scale j by 3", xform::scaling(3, 1, 3)},
            {"interchange * scale",
             xform::interchange(3, 0, 1) * xform::scaling(3, 1, 2)},
        };
        std::printf("--- legality of classic transformations on GEMM "
                    "(dependence (0,0,1)) ---\n");
        for (const Case &c : cases) {
            bool legal = deps::isLegalTransformation(c.t, dep);
            std::printf("  %-22s det %2lld  %s\n", c.name,
                        static_cast<long long>(determinant(c.t)),
                        legal ? "legal" : "ILLEGAL");
        }
    }
    return 0;
}
