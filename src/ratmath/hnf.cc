#include "ratmath/hnf.h"

#include <cstdlib>

namespace anc {

namespace {

/** col[dst] += f * col[src], applied to both h and its companion u. */
void
addColMultiple(IntMatrix &h, IntMatrix &u, size_t dst, size_t src, Int f)
{
    if (f == 0)
        return;
    for (size_t i = 0; i < h.rows(); ++i)
        h(i, dst) = checkedAdd(h(i, dst), checkedMul(f, h(i, src)));
    for (size_t i = 0; i < u.rows(); ++i)
        u(i, dst) = checkedAdd(u(i, dst), checkedMul(f, u(i, src)));
}

void
negateColumn(IntMatrix &h, IntMatrix &u, size_t c)
{
    for (size_t i = 0; i < h.rows(); ++i)
        h(i, c) = checkedNeg(h(i, c));
    for (size_t i = 0; i < u.rows(); ++i)
        u(i, c) = checkedNeg(u(i, c));
}

void
swapColumnsBoth(IntMatrix &h, IntMatrix &u, size_t a, size_t b)
{
    if (a == b)
        return;
    h.swapColumns(a, b);
    u.swapColumns(a, b);
}

} // namespace

ColumnHNF
columnHNF(const IntMatrix &a)
{
    size_t m = a.rows(), n = a.cols();
    ColumnHNF out;
    out.h = a;
    out.u = IntMatrix::identity(n);
    IntMatrix &h = out.h;
    IntMatrix &u = out.u;

    size_t k = 0; // next pivot column
    for (size_t i = 0; i < m && k < n; ++i) {
        // Euclidean reduction across columns k..n-1 on row i until at
        // most one nonzero remains, parked in column k.
        while (true) {
            // Find the column with the smallest nonzero |h(i, j)|.
            size_t best = n;
            for (size_t j = k; j < n; ++j) {
                if (h(i, j) == 0)
                    continue;
                if (best == n ||
                    std::llabs(h(i, j)) < std::llabs(h(i, best))) {
                    best = j;
                }
            }
            if (best == n)
                break; // row is all zero in the active columns
            swapColumnsBoth(h, u, k, best);
            bool reduced_all = true;
            for (size_t j = k + 1; j < n; ++j) {
                if (h(i, j) == 0)
                    continue;
                Int q = h(i, j) / h(i, k); // truncating; shrinks |h(i, j)|
                addColMultiple(h, u, j, k, checkedNeg(q));
                if (h(i, j) != 0)
                    reduced_all = false;
            }
            if (reduced_all)
                break;
        }
        if (h(i, k) == 0)
            continue; // no pivot in this row
        if (h(i, k) < 0)
            negateColumn(h, u, k);
        // Canonicalize: entries left of the pivot in this row go to
        // [0, pivot). Column k is zero above row i, so this does not
        // disturb rows already processed.
        for (size_t j = 0; j < k; ++j) {
            Int q = floorDiv(h(i, j), h(i, k));
            addColMultiple(h, u, j, k, checkedNeg(q));
        }
        out.pivotRows.push_back(i);
        ++k;
    }
    return out;
}

RowHNF
rowHNF(const IntMatrix &a)
{
    ColumnHNF c = columnHNF(a.transpose());
    RowHNF out;
    out.h = c.h.transpose();
    out.u = c.u.transpose();
    out.pivotCols = c.pivotRows;
    return out;
}

} // namespace anc
