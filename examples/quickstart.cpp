/**
 * @file
 * Quickstart: parse a FORTRAN-D-flavoured program, run the access
 * normalization pipeline, inspect every stage, and simulate it on the
 * modeled BBN Butterfly GP1000.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/compiler.h"
#include "dsl/parser.h"

int
main()
{
    // Figure 1(a) of the paper: a simplified SYR2K-like kernel whose
    // untransformed form has terrible locality under a wrapped column
    // distribution.
    const char *source = R"(
# access patterns: B[i, j-i] (distribution dim: j-i), A[i, j+k]
param N1, N2, b
array A(N1, N1+N2+b-2) distribute wrapped(1)
array B(N1, b) distribute wrapped(1)

for i = 0, N1-1
  for j = i, i+b-1
    for k = 0, N2-1
      B[i, j-i] = B[i, j-i] + A[i, j+k]
)";

    anc::ir::Program program = anc::dsl::parseProgram(source);
    anc::core::Compilation c = anc::core::compile(program);

    // The report shows the data access matrix, the dependence matrix,
    // BasisMatrix/LegalBasis/LegalInvt results, the transformed nest
    // (Figure 1(c)) and the SPMD node program (Figure 1(d)).
    std::printf("%s\n", c.report().c_str());

    // Simulate on the Butterfly model and report speedups.
    anc::IntVec params{64, 32, 16}; // N1, N2, b
    double seq = anc::core::sequentialTime(
        c, anc::numa::MachineParams::butterflyGP1000(), params);
    std::printf("simulated speedup (N1=64, N2=32, b=16):\n");
    for (anc::Int p : {2, 4, 8, 16}) {
        anc::numa::SimOptions opts;
        opts.processors = p;
        anc::numa::SimStats s = anc::core::simulate(c, opts, {params, {}});
        std::printf("  P = %2lld: speedup %5.2f   (remote accesses: %llu, "
                    "block transfers: %llu)\n",
                    static_cast<long long>(p), s.speedup(seq),
                    static_cast<unsigned long long>(
                        s.totalRemoteAccesses()),
                    static_cast<unsigned long long>(
                        s.totalBlockTransfers()));
    }
    return 0;
}
