#include "ratmath/fault.h"

#include <algorithm>
#include <string>

#include "ratmath/error.h"

namespace anc::fault {

namespace detail {
thread_local bool active = false;
}

namespace {

thread_local std::uint64_t g_ops = 0;
thread_local std::vector<std::uint64_t> g_schedule;
thread_local std::size_t g_next = 0;
thread_local Kind g_kind = Kind::Overflow;

} // namespace

void
armAt(std::uint64_t nth, Kind kind)
{
    arm(std::vector<std::uint64_t>{nth}, kind);
}

void
arm(std::vector<std::uint64_t> indices, Kind kind)
{
    std::sort(indices.begin(), indices.end());
    g_schedule = std::move(indices);
    g_next = 0;
    g_kind = kind;
    g_ops = 0;
    detail::active = true;
}

void
startCounting()
{
    g_schedule.clear();
    g_next = 0;
    g_ops = 0;
    detail::active = true;
}

void
disarm()
{
    g_schedule.clear();
    g_next = 0;
    detail::active = false;
}

bool
armed()
{
    return detail::active && g_next < g_schedule.size();
}

std::uint64_t
opCount()
{
    return g_ops;
}

void
detail::point()
{
    ++g_ops;
    if (g_next >= g_schedule.size() || g_ops != g_schedule[g_next])
        return;
    ++g_next;
    std::string msg = "injected fault at checked operation #" +
                      std::to_string(g_ops);
    if (g_kind == Kind::Math)
        throw MathError(msg);
    throw OverflowError(msg);
}

} // namespace anc::fault
