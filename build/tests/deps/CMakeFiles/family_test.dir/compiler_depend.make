# Empty compiler generated dependencies file for family_test.
# This may be replaced when dependencies are built.
