/**
 * @file
 * Unit tests for SPMD node-program emission.
 */

#include <gtest/gtest.h>

#include "codegen/emit_c.h"
#include "codegen/planner.h"
#include "ir/gallery.h"
#include "xform/normalize.h"

namespace anc::codegen {
namespace {

TEST(EmitGemm, MatchesPaperSection81Structure)
{
    // The paper's parallel GEMM:
    //   for u = p, N, step P
    //     for v = 1, N
    //       read A[*, v];
    //       for w = 1, N
    //         C[w, u] = C[w, u] + A[w, v] * B[v, u]
    ir::Program p = ir::gallery::gemm();
    xform::NormalizeResult r = xform::accessNormalize(p);
    numa::ExecutionPlan plan =
        planCodegen(p, *r.nest, r.depMatrix, &r.access);
    std::string s = emitNodeProgram(p, *r.nest, plan);
    EXPECT_NE(s.find("step P"), std::string::npos) << s;
    EXPECT_NE(s.find("read A[*, v]"), std::string::npos) << s;
    EXPECT_NE(s.find("C[w, u] = C[w, u] + A[w, v] * B[v, u]"),
              std::string::npos)
        << s;
}

TEST(EmitSyr2k, HasFourBlockReads)
{
    ir::Program p = ir::gallery::syr2kBanded();
    xform::NormalizeResult r = xform::accessNormalize(p);
    numa::ExecutionPlan plan =
        planCodegen(p, *r.nest, r.depMatrix, &r.access);
    std::string s = emitNodeProgram(p, *r.nest, plan);
    size_t reads = 0, pos = 0;
    while ((pos = s.find("read ", pos)) != std::string::npos) {
        ++reads;
        pos += 5;
    }
    EXPECT_GE(reads, 4u) << s;
    EXPECT_NE(s.find("block transfer"), std::string::npos);
}

TEST(EmitNonUnit, StrideAppearsInInnerLoops)
{
    ir::Program p = ir::gallery::section3Example();
    xform::TransformedNest nest =
        xform::applyTransform(p, IntMatrix{{2, 4}, {1, 5}});
    numa::ExecutionPlan plan;
    std::string s = emitNodeProgram(p, nest, plan);
    EXPECT_NE(s.find("step 3"), std::string::npos) << s;
}

TEST(EmitSync, NonParallelOuterAnnotated)
{
    ir::Program p = ir::gallery::gemm();
    xform::TransformedNest nest =
        xform::applyTransform(p, IntMatrix::identity(3));
    numa::ExecutionPlan plan;
    plan.outerParallel = false;
    std::string s = emitNodeProgram(p, nest, plan);
    EXPECT_NE(s.find("synchronize"), std::string::npos);
}

TEST(EmitOwnership, GuardsAndComment)
{
    std::string s = emitOwnershipProgram(ir::gallery::gemm());
    EXPECT_NE(s.find("if (owner(C[i, j]) == p)"), std::string::npos) << s;
    EXPECT_NE(s.find("looking for work to do"), std::string::npos);
    EXPECT_NE(s.find("for i ="), std::string::npos);
}

} // namespace
} // namespace anc::codegen
