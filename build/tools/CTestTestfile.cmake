# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ancc_gemm_report "/root/repo/build/tools/ancc" "/root/repo/tools/samples/gemm.an")
set_tests_properties(ancc_gemm_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ancc_gemm_emit "/root/repo/build/tools/ancc" "--emit" "/root/repo/tools/samples/gemm.an")
set_tests_properties(ancc_gemm_emit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ancc_syr2k_simulate "/root/repo/build/tools/ancc" "--emit" "--simulate" "P=1,4,8" "--param" "N=24" "--param" "b=4" "/root/repo/tools/samples/syr2k.an")
set_tests_properties(ancc_syr2k_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ancc_figure1_suggest "/root/repo/build/tools/ancc" "--suggest" "/root/repo/tools/samples/figure1.an")
set_tests_properties(ancc_figure1_suggest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ancc_no_restructure "/root/repo/build/tools/ancc" "--no-restructure" "--emit" "/root/repo/tools/samples/gemm.an")
set_tests_properties(ancc_no_restructure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ancc_missing_file "/root/repo/build/tools/ancc" "/nonexistent.an")
set_tests_properties(ancc_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
