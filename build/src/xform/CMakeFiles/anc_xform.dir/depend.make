# Empty dependencies file for anc_xform.
# This may be replaced when dependencies are built.
