# Empty compiler generated dependencies file for loop_nest_test.
# This may be replaced when dependencies are built.
