#include "numa/simulator.h"

#include <algorithm>
#include <limits>

#include "ratmath/diophantine.h"

namespace anc::numa {

namespace {

constexpr int kNoHoist = -2;

/** A subscript compiled to integer arithmetic: (num . u + cst) / den. */
struct SubEval
{
    IntVec num;
    Int cst = 0;
    Int den = 1;

    Int
    eval(const IntVec &u) const
    {
        Int128 acc = cst;
        for (size_t k = 0; k < num.size(); ++k)
            acc += Int128(num[k]) * Int128(u[k]);
        Int v = narrow128(acc);
        if (den != 1) {
            if (v % den != 0)
                throw InternalError("subscript not integral at point");
            v /= den;
        }
        return v;
    }
};

SubEval
compileSub(const ir::AffineExpr &e, const IntVec &params)
{
    // Fold parameters and the constant into one rational.
    Rational cst = e.constantTerm();
    for (size_t q = 0; q < e.numParams(); ++q)
        if (!e.paramCoeff(q).isZero())
            cst += e.paramCoeff(q) * Rational(params[q]);
    Int den = cst.den();
    for (size_t k = 0; k < e.numVars(); ++k)
        den = lcmInt(den, e.varCoeff(k).den());
    SubEval s;
    s.den = den;
    s.num.resize(e.numVars());
    for (size_t k = 0; k < e.numVars(); ++k)
        s.num[k] = (e.varCoeff(k) * Rational(den)).asInteger();
    s.cst = (cst * Rational(den)).asInteger();
    return s;
}

/** One compiled array reference. */
struct RefEval
{
    size_t arrayId;
    bool isWrite;
    std::vector<SubEval> subs;
    int hoistLevel = kNoHoist;
    size_t globalIdx = 0; //!< index into the per-run lastKey table
};

/** One compiled statement: reads in rhs order, then the write. */
struct StmtEval
{
    size_t flops = 0;
    std::vector<RefEval> refs;
    const ir::Statement *stmt = nullptr;
};

} // namespace

struct Simulator::Compiled
{
    std::vector<StmtEval> stmts;
    std::vector<Distribution> dists;
    IntVec params;
    size_t depth = 0;
    size_t numRefs = 0;
    double remoteTime = 0.0;
    double perElementBlockTime = 0.0;
};

Simulator::Simulator(const ir::Program &prog,
                     const xform::TransformedNest &nest,
                     const ExecutionPlan &plan, SimOptions opts)
    : prog_(prog), nest_(nest), plan_(plan), opts_(std::move(opts))
{
    if (opts_.processors <= 0)
        throw UserError("processor count must be positive");
}

void
Simulator::runProcessor(const Compiled &c, Int p, ProcStats &stats,
                        ir::ArrayStorage *storage,
                        const ir::Bindings &binds) const
{
    const MachineParams &m = opts_.machine;
    size_t n = c.depth;
    const IntVec &params = c.params;

    IntVec u(n, 0);
    IntVec y;
    y.reserve(n);
    std::vector<uint64_t> ticks(n, 0);
    std::vector<uint64_t> lastKey(c.numRefs, 0);
    IntVec subsBuf;
    // Second-level clamp for 2-D block partitioning (lo, hi); hi may be
    // the sentinel max when the last grid column absorbs the remainder.
    bool clamp1 = false;
    Int clamp1_lo = 0, clamp1_hi = 0;

    stats.proc = p;

    auto execute_body = [&]() {
        stats.iterations += 1;
        stats.time += m.loopOverheadTime;
        for (const StmtEval &s : c.stmts) {
            stats.flops += s.flops;
            stats.time += double(s.flops) * m.flopTime;
            for (const RefEval &r : s.refs) {
                const Distribution &dist = c.dists[r.arrayId];
                Int own = -1;
                if (!dist.replicated()) {
                    subsBuf.resize(r.subs.size());
                    for (size_t d = 0; d < r.subs.size(); ++d) {
                        subsBuf[d] =
                            dist.spec().isDistributionDim(d)
                                ? r.subs[d].eval(u)
                                : 0;
                    }
                    own = dist.owner(subsBuf);
                }
                bool local = own < 0 || own == p;
                if (local) {
                    stats.localAccesses += 1;
                    stats.time += m.localAccessTime;
                } else if (!r.isWrite && opts_.blockTransfers &&
                           r.hoistLevel != kNoHoist) {
                    uint64_t key =
                        r.hoistLevel < 0 ? 1 : ticks[size_t(r.hoistLevel)];
                    if (lastKey[r.globalIdx] != key) {
                        lastKey[r.globalIdx] = key;
                        stats.blockTransfers += 1;
                        stats.time += m.blockStartupTime;
                    }
                    stats.blockElements += 1;
                    stats.time += c.perElementBlockTime + m.localAccessTime;
                } else {
                    stats.noteRemote(r.arrayId, c.dists.size());
                    stats.time += c.remoteTime;
                }
            }
            if (storage)
                ir::execStatement(*s.stmt, u, binds, *storage, nullptr);
        }
    };

    std::function<void(size_t)> walk = [&](size_t k) {
        if (k == n) {
            execute_body();
            return;
        }
        Int lo = nest_.lowerAt(k, u, params);
        Int hi = nest_.upperAt(k, u, params);
        if (k == 1 && clamp1) {
            lo = std::max(lo, clamp1_lo);
            hi = std::min(hi, clamp1_hi);
        }
        if (lo > hi)
            return;
        Int s = nest_.lattice().stride(k);
        Int start = nest_.startAt(k, lo, y);
        for (Int v = start; v <= hi; v += s) {
            u[k] = v;
            ticks[k] += 1;
            y.push_back(nest_.lattice().solveY(k, v, y));
            walk(k + 1);
            y.pop_back();
        }
        u[k] = 0;
    };

    // Outermost level: assign iterations to this processor per the plan.
    Int lo = nest_.lowerAt(0, u, params);
    Int hi = nest_.upperAt(0, u, params);
    if (lo > hi)
        return;
    Int s = nest_.lattice().stride(0);
    Int base = nest_.startAt(0, lo, y);
    Int start = base, step = s;
    Int block_lo = lo, block_hi = hi;

    switch (plan_.scheme) {
      case PartitionScheme::RoundRobin:
        start = checkedAdd(base, checkedMul(p, s));
        step = checkedMul(s, opts_.processors);
        break;
      case PartitionScheme::OwnerWrapped: {
        // u == anchor (mod s) and u == p (mod P): the Diophantine
        // alignment of Section 7 (unit-step loops reduce to the paper's
        // ceil((lb - p)/P)*P + p formula).
        auto cc = combineCongruences(euclidMod(base, s), s, p,
                                     opts_.processors);
        if (!cc)
            return; // this processor owns no iteration
        start = checkedAdd(lo, euclidMod(checkedSub(cc->rem, lo), cc->mod));
        step = cc->mod;
        break;
      }
      case PartitionScheme::OwnerBlock2D: {
        if (!plan_.alignedArray)
            throw InternalError("OwnerBlock2D without aligned array");
        const Distribution &d = c.dists[*plan_.alignedArray];
        Int pr = p / d.gridCols();
        Int pc = p % d.gridCols();
        Int bs0 = d.blockSize(0), bs1 = d.blockSize(1);
        block_lo = std::max(lo, checkedMul(pr, bs0));
        block_hi = std::min(hi, checkedSub(checkedMul(pr + 1, bs0), 1));
        if (pr == d.gridRows() - 1)
            block_hi = hi; // last grid row absorbs the remainder
        if (block_lo > block_hi)
            return;
        start = checkedAdd(block_lo,
                           euclidMod(checkedSub(base, block_lo), s));
        step = s;
        hi = block_hi;
        clamp1 = true;
        clamp1_lo = checkedMul(pc, bs1);
        clamp1_hi = pc == d.gridCols() - 1
                        ? std::numeric_limits<Int>::max()
                        : checkedSub(checkedMul(pc + 1, bs1), 1);
        break;
      }
      case PartitionScheme::OwnerBlocked: {
        if (!plan_.alignedArray)
            throw InternalError("OwnerBlocked without aligned array");
        const Distribution &d = c.dists[*plan_.alignedArray];
        Int bs = d.blockSize();
        block_lo = std::max(lo, checkedMul(p, bs));
        block_hi = std::min(hi, checkedSub(checkedMul(p + 1, bs), 1));
        if (p == opts_.processors - 1)
            block_hi = hi; // last block absorbs the remainder
        if (block_lo > block_hi)
            return;
        start = checkedAdd(block_lo,
                           euclidMod(checkedSub(base, block_lo), s));
        step = s;
        hi = block_hi;
        break;
      }
    }

    for (Int v = start; v <= hi; v += step) {
        u[0] = v;
        ticks[0] += 1;
        y.push_back(nest_.lattice().solveY(0, v, y));
        if (!plan_.outerParallel) {
            stats.syncs += 1;
            stats.time += opts_.machine.syncTime;
        }
        walk(1);
        y.pop_back();
    }
}

SimStats
Simulator::run(const ir::Bindings &binds, ir::ArrayStorage *storage) const
{
    if (binds.paramValues.size() != prog_.params.size())
        throw UserError("wrong number of parameter values");
    if (opts_.executeValues && !storage)
        throw UserError("executeValues requires storage");
    if (!opts_.executeValues)
        storage = nullptr;

    // Compile the nest body against the bound parameters.
    Compiled c;
    c.depth = nest_.depth();
    c.params = binds.paramValues;
    for (const ir::ArrayDecl &a : prog_.arrays)
        c.dists.emplace_back(a.dist, a.evalExtents(binds.paramValues),
                             opts_.processors);
    c.remoteTime = opts_.machine.remoteTime(int(opts_.processors));
    c.perElementBlockTime =
        opts_.machine.blockPerByteTime *
        (1.0 + opts_.machine.contentionFactor *
                   double(opts_.processors - 1)) *
        double(opts_.machine.elementSize);

    size_t global = 0;
    for (size_t si = 0; si < nest_.body().size(); ++si) {
        const ir::Statement &stmt = nest_.body()[si];
        StmtEval se;
        se.stmt = &stmt;
        se.flops = stmt.flopCount();
        size_t read_idx = 0;
        stmt.rhs.forEachRef([&](const ir::ArrayRef &r) {
            RefEval re;
            re.arrayId = r.arrayId;
            re.isWrite = false;
            for (const ir::AffineExpr &e : r.subscripts)
                re.subs.push_back(compileSub(e, c.params));
            for (const BlockHoist &h : plan_.hoists)
                if (h.stmt == si && h.readIdx == read_idx)
                    re.hoistLevel = h.level;
            re.globalIdx = global++;
            se.refs.push_back(std::move(re));
            ++read_idx;
        });
        RefEval w;
        w.arrayId = stmt.lhs.arrayId;
        w.isWrite = true;
        for (const ir::AffineExpr &e : stmt.lhs.subscripts)
            w.subs.push_back(compileSub(e, c.params));
        w.globalIdx = global++;
        se.refs.push_back(std::move(w));
        c.stmts.push_back(std::move(se));
    }
    c.numRefs = global;

    std::vector<Int> procs = opts_.sampleProcs;
    if (procs.empty())
        for (Int p = 0; p < opts_.processors; ++p)
            procs.push_back(p);

    SimStats out;
    out.processors = opts_.processors;
    out.sampled = Int(procs.size()) != opts_.processors;
    if (storage && out.sampled)
        throw UserError("executeValues requires simulating all processors");
    for (Int p : procs) {
        ProcStats ps;
        runProcessor(c, p, ps, storage, binds);
        out.perProc.push_back(ps);
    }
    return out;
}

double
sequentialTime(const ir::Program &prog, const xform::TransformedNest &nest,
               const MachineParams &machine, const IntVec &params)
{
    SimOptions opts;
    opts.processors = 1;
    opts.machine = machine;
    opts.blockTransfers = false;
    ExecutionPlan plan;
    Simulator sim(prog, nest, plan, opts);
    ir::Bindings binds{params,
                       std::vector<double>(prog.scalars.size(), 1.0)};
    return sim.run(binds).parallelTime();
}

SimStats
simulateOwnership(const ir::Program &prog, const SimOptions &opts,
                  const ir::Bindings &binds)
{
    const MachineParams &m = opts.machine;
    Int procs = opts.processors;
    std::vector<Distribution> dists;
    for (const ir::ArrayDecl &a : prog.arrays)
        dists.emplace_back(a.dist, a.evalExtents(binds.paramValues), procs);

    std::vector<Int> sample = opts.sampleProcs;
    if (sample.empty())
        for (Int p = 0; p < procs; ++p)
            sample.push_back(p);
    std::vector<Int> proc_of(size_t(procs), -1);
    SimStats out;
    out.processors = procs;
    out.sampled = Int(sample.size()) != procs;
    out.perProc.resize(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
        out.perProc[i].proc = sample[i];
        proc_of[size_t(sample[i])] = Int(i);
    }
    double remote_time = m.remoteTime(int(procs));

    uint64_t total_iterations = 0;
    IntVec subsBuf;
    ir::forEachIteration(prog.nest, binds.paramValues, [&](const IntVec &it) {
        ++total_iterations;
        for (const ir::Statement &s : prog.nest.body()) {
            // Owner of the left-hand side element.
            const Distribution &ld = dists[s.lhs.arrayId];
            Int own = 0;
            if (!ld.replicated()) {
                subsBuf.clear();
                for (const ir::AffineExpr &e : s.lhs.subscripts)
                    subsBuf.push_back(
                        e.evaluateInt(it, binds.paramValues));
                own = ld.owner(subsBuf);
            }
            Int slot = own >= 0 && own < procs ? proc_of[size_t(own)] : -1;
            if (slot < 0)
                continue;
            ProcStats &ps = out.perProc[size_t(slot)];
            ps.iterations += 1;
            ps.time += m.loopOverheadTime;
            size_t flops = s.flopCount();
            ps.flops += flops;
            ps.time += double(flops) * m.flopTime;
            auto charge = [&](const ir::ArrayRef &r) {
                const Distribution &d = dists[r.arrayId];
                Int o = -1;
                if (!d.replicated()) {
                    subsBuf.clear();
                    for (const ir::AffineExpr &e : r.subscripts)
                        subsBuf.push_back(
                            e.evaluateInt(it, binds.paramValues));
                    o = d.owner(subsBuf);
                }
                if (o < 0 || o == own) {
                    ps.localAccesses += 1;
                    ps.time += m.localAccessTime;
                } else {
                    ps.noteRemote(r.arrayId, dists.size());
                    ps.time += remote_time;
                }
            };
            s.rhs.forEachRef(charge);
            charge(s.lhs);
        }
    });

    // Every processor pays the guard on every iteration -- the
    // "looking for work to do" cost.
    for (ProcStats &ps : out.perProc) {
        ps.guardChecks += total_iterations;
        ps.time += double(total_iterations) * m.guardTime;
    }
    return out;
}

} // namespace anc::numa
