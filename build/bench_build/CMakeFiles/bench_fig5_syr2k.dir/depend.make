# Empty dependencies file for bench_fig5_syr2k.
# This may be replaced when dependencies are built.
