/**
 * @file
 * Section 1 analysis: message-size amortization and the contention
 * counter-argument.
 *
 * The paper motivates block transfers with the cost asymmetry between
 * startup and per-element transfer (GP1000: 8 us + 0.31 us/B; iPSC/i860:
 * 70 us startup, ~1 us/double), and notes Agarwal's analysis that long
 * messages can *increase* network latency -- an effect it argues is
 * secondary. This bench prints:
 *
 *   1. per-element cost of a block transfer vs. element-wise remote
 *      access as a function of message size, on both machine presets
 *      (with the break-even size);
 *   2. a contention ablation: GEMM-B speedup at 28 processors as the
 *      contention factor grows, showing where block transfers stop
 *      paying off.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/compiler.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

void
printAmortization()
{
    std::printf("=== Section 1: block-transfer amortization ===\n\n");
    for (numa::MachineParams m : {numa::MachineParams::butterflyGP1000(),
                                  numa::MachineParams::ipsc860()}) {
        std::printf("--- %s (startup %.1f us, %.2f us/B, remote %.1f us) "
                    "---\n",
                    m.name.c_str(), m.blockStartupTime,
                    m.blockPerByteTime, m.remoteAccessTime);
        std::printf("%10s %16s %16s %10s\n", "elements",
                    "block us/elem", "remote us/elem", "winner");
        long breakeven = -1;
        for (long e : {1L, 2L, 4L, 8L, 16L, 64L, 256L, 1024L, 4096L}) {
            double per_block = m.blockTransferTime(e, 1) / double(e);
            double per_remote = m.remoteTime(1);
            std::printf("%10ld %16.2f %16.2f %10s\n", e, per_block,
                        per_remote,
                        per_block < per_remote ? "block" : "remote");
            if (breakeven < 0 && per_block < per_remote)
                breakeven = e;
        }
        std::printf("break-even at ~%ld elements\n\n", breakeven);
    }
}

void
printContentionAblation()
{
    Int n = bench::envInt("ANC_BENCH_N", 96);
    core::Compilation c = core::compile(ir::gallery::gemm());
    double seq = core::sequentialTime(
        c, numa::MachineParams::butterflyGP1000(), {n});

    std::printf("=== Contention ablation (GEMM, P = 28, N = %lld) ===\n\n",
                static_cast<long long>(n));
    std::printf("%12s %12s %12s %14s\n", "contention", "gemmT", "gemmB",
                "B advantage");
    bench::JsonReport report("msgsize");
    report.flag("N", n);
    report.flag("sampled", false);
    for (double f : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
        numa::SimOptions opts;
        opts.processors = 28;
        opts.machine.contentionFactor = f;
        opts.blockTransfers = false;
        bench::WallTimer tt;
        numa::SimStats st_stats = core::simulate(c, opts, {{n}, {}});
        double wall_t = tt.seconds();
        double st = st_stats.speedup(seq);
        opts.blockTransfers = true;
        bench::WallTimer tb;
        numa::SimStats sb_stats = core::simulate(c, opts, {{n}, {}});
        double wall_b = tb.seconds();
        double sb = sb_stats.speedup(seq);
        char label[48];
        std::snprintf(label, sizeof label, "contention_%.3f", f);
        report.run(std::string("gemmT_") + label, 28, wall_t,
                   st_stats.parallelTime(), st);
        report.run(std::string("gemmB_") + label, 28, wall_b,
                   sb_stats.parallelTime(), sb);
        std::printf("%12.3f %12.2f %12.2f %13.2fx\n", f, st, sb, sb / st);
    }
    report.write();
    std::printf("\ncontention hurts both variants but element-wise "
                "remote access more: the\namortization argument "
                "dominates, as the paper claims (Section 1/8).\n\n");
}

void
BM_MsgSize_BlockTransferCost(benchmark::State &state)
{
    numa::MachineParams m = numa::MachineParams::butterflyGP1000();
    for (auto _ : state)
        benchmark::DoNotOptimize(m.blockTransferTime(state.range(0), 28));
}
BENCHMARK(BM_MsgSize_BlockTransferCost)->Arg(1024);

} // namespace

int
main(int argc, char **argv)
{
    printAmortization();
    printContentionAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
