/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench binary prints its paper table/figure data to stdout first
 * (the reproduction artifact), then runs google-benchmark timings of
 * the underlying machinery. Environment knobs:
 *
 *   ANC_BENCH_N      problem size N       (default: binary-specific)
 *   ANC_BENCH_B      band width b         (default: binary-specific)
 *   ANC_BENCH_FULL   =1: paper-scale N=400 runs (slow, exact sizes)
 */

#ifndef ANC_BENCH_BENCH_UTIL_H
#define ANC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ratmath/int_util.h"

namespace anc::bench {

inline Int
envInt(const char *name, Int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoll(v, nullptr, 10);
}

inline bool
fullScale()
{
    return envInt("ANC_BENCH_FULL", 0) != 0;
}

/** Processor counts on the paper's x axes (Figures 4 and 5). */
inline std::vector<Int>
paperProcessorCounts()
{
    return {1, 2, 4, 8, 12, 16, 20, 24, 28};
}

/** Print a fixed-width row of a speedup table. */
inline void
printSpeedupHeader(const char *title, const std::vector<std::string> &cols)
{
    std::printf("\n%s\n", title);
    std::printf("%6s", "P");
    for (const std::string &c : cols)
        std::printf("  %10s", c.c_str());
    std::printf("\n");
}

inline void
printSpeedupRow(Int p, const std::vector<double> &speedups)
{
    std::printf("%6lld", static_cast<long long>(p));
    for (double s : speedups)
        std::printf("  %10.2f", s);
    std::printf("\n");
}

/** Sampled processors for fast simulation: ends and middle. */
inline std::vector<Int>
sampleProcs(Int p)
{
    if (p <= 4) {
        std::vector<Int> all;
        for (Int q = 0; q < p; ++q)
            all.push_back(q);
        return all;
    }
    return {0, 1, p / 2, p - 2, p - 1};
}

} // namespace anc::bench

#endif // ANC_BENCH_BENCH_UTIL_H
