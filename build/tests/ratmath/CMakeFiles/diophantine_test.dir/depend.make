# Empty dependencies file for diophantine_test.
# This may be replaced when dependencies are built.
