/**
 * @file
 * Deterministic fault injection for the checked-arithmetic layer.
 *
 * Every checked operation in ratmath (checkedAdd, checkedMul, floorDiv,
 * ...) passes through an injection point. Tests arm the injector with a
 * schedule of operation indices; when the running operation count hits a
 * scheduled index, the operation throws OverflowError (or MathError)
 * instead of computing. Because the compiler pipeline is deterministic,
 * arming index N always faults the same operation, which lets the test
 * suite drive every recovery boundary of core::compileResilient() from
 * every arithmetic site reachable from a given program.
 *
 * All state is thread_local: arming affects only the calling thread, so
 * the simulator's host thread pool is never perturbed, and concurrent
 * tests cannot interfere. When the injector is disarmed (the default)
 * the only cost on the checked-arithmetic hot path is one thread-local
 * flag test.
 */

#ifndef ANC_RATMATH_FAULT_H
#define ANC_RATMATH_FAULT_H

#include <cstdint>
#include <vector>

namespace anc::fault {

/** Which error an injected fault raises. */
enum class Kind
{
    Overflow, //!< OverflowError, as if 64-bit arithmetic overflowed
    Math,     //!< MathError, as if a division by zero were attempted
};

/**
 * Arm the injector on this thread: the nth checked operation from now
 * (1-based) throws. Resets the operation counter.
 */
void armAt(std::uint64_t nth, Kind kind = Kind::Overflow);

/**
 * Arm with a schedule of 1-based operation indices (ascending); each
 * listed operation throws in turn, so a multi-element schedule can fail
 * several recovery tiers of one compilation. Resets the counter.
 */
void arm(std::vector<std::uint64_t> indices, Kind kind = Kind::Overflow);

/** Count checked operations without throwing. Resets the counter. */
void startCounting();

/** Disarm and stop counting on this thread. */
void disarm();

/** True when a fault is still pending on this thread. */
bool armed();

/** Checked operations observed since the last arm/startCounting. */
std::uint64_t opCount();

/** RAII arming: disarms on scope exit even if the fault was not hit. */
struct ScopedFault
{
    explicit ScopedFault(std::uint64_t nth, Kind kind = Kind::Overflow)
    {
        armAt(nth, kind);
    }
    explicit ScopedFault(std::vector<std::uint64_t> indices,
                         Kind kind = Kind::Overflow)
    {
        arm(std::move(indices), kind);
    }
    ~ScopedFault() { disarm(); }
    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;
};

namespace detail {

/** Set while counting or armed; checked ops call point() only then. */
extern thread_local bool active;

/** Count one operation and throw if its index is scheduled. */
void point();

/** The hook every checked operation executes. */
inline void
checkpoint()
{
    if (active)
        point();
}

} // namespace detail

} // namespace anc::fault

#endif // ANC_RATMATH_FAULT_H
