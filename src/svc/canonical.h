/**
 * @file
 * A priori loop-nest canonicalization and content-addressed plan keys.
 *
 * The compilation service must recognize that two syntactically
 * different programs ask for the same plan. canonicalize() rewrites a
 * program into a normal form in which access-equivalent nests print
 * identically:
 *
 *   - lower bounds are anchored at zero (i = i' + L, with L the
 *     lexicographically least lower bound -- a translation-invariant
 *     and therefore canonical choice even for max() bound lists), so
 *     "for i = 5, N+4 ... A[i-5]" and "for i = 0, N-1 ... A[i]"
 *     coincide;
 *   - loop direction is normalized (i = -i'): the first subscript whose
 *     innermost variable is i gets a positive i coefficient, so a
 *     loop-reversed rendering ("A[N-1-i]" over the same range) folds
 *     back onto the forward one;
 *   - bound lists (the max/min sets) are sorted and deduplicated under
 *     a structural ordering;
 *   - loop variables are renamed to a canonical sequence (c0, c1, ...,
 *     skipping collisions with declared names).
 *
 * Loop steps are already normal in this IR: source nests are step-1 by
 * construction, and step-rescaled *renderings* -- bounds or subscripts
 * written as (2i)/2, (4N-4)/4 -- collapse in the exact rational
 * coefficient arithmetic before canonicalize even looks at them.
 *
 * Every rewrite is a bijective reindexing of the iteration space, so
 * the canonical program has the same access structure, dependence
 * structure up to the reindexing, and the same executed statement
 * instances as the original (the direction pass reverses a level's
 * traversal order, which preserves the access structure the planner
 * consumes; see DESIGN.md "Canonical forms"). The service compiles the
 * canonical program and serves that plan.
 *
 * PlanKey is the 128-bit content hash of (canonical text, machine
 * parameters, compile options): equal keys mean "the same compilation
 * would be performed", which is exactly the plan cache's contract.
 */

#ifndef ANC_SVC_CANONICAL_H
#define ANC_SVC_CANONICAL_H

#include <string>

#include "core/compiler.h"
#include "ir/loop_nest.h"
#include "numa/machine.h"
#include "ratmath/hash.h"

namespace anc::svc {

/** The canonicalized program plus what the passes did to produce it. */
struct CanonicalForm
{
    ir::Program program; //!< the canonical program (compile this)
    std::string text;    //!< canonical DSL rendering (hash/diff this)
    size_t shiftedLevels = 0;  //!< levels whose lower bound moved to 0
    size_t reversedLevels = 0; //!< levels whose direction was flipped
    bool renamed = false;      //!< some loop variable was renamed
};

/**
 * Canonicalize a structurally valid program. Throws UserError when the
 * input fails ir::Program::validate(); arithmetic faults (injected or
 * real) surface as OverflowError/MathError for the caller's recovery
 * policy, exactly like any other pipeline stage.
 */
CanonicalForm canonicalize(const ir::Program &prog);

/** Content-addressed cache key: hash of everything the compilation
 * depends on. */
struct PlanKey
{
    Hash128 value;

    bool operator==(const PlanKey &o) const { return value == o.value; }
    bool operator!=(const PlanKey &o) const { return value != o.value; }
    bool operator<(const PlanKey &o) const { return value < o.value; }

    /** 32 hex digits; the stable external spelling of the key. */
    std::string hex() const { return value.hex(); }
};

/**
 * Derive the plan key for compiling `canonical` under the given machine
 * and options. Every field that changes the produced plan is hashed
 * (canonical text, all machine cost-model fields, the normalize and
 * validate options, and every plan-search knob including the scoring
 * machine); observability knobs (trace, cancel) and
 * search.hostThreads (bit-identical simulation across host
 * parallelism) are not.
 */
PlanKey planKey(const CanonicalForm &canonical,
                const numa::MachineParams &machine,
                const core::CompileOptions &opts);

} // namespace anc::svc

#endif // ANC_SVC_CANONICAL_H
