# Empty compiler generated dependencies file for bench_msgsize.
# This may be replaced when dependencies are built.
