#include "xform/search.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "codegen/planner.h"
#include "deps/dependence.h"
#include "numa/simulator.h"
#include "ratmath/linalg.h"
#include "verify/verify.h"
#include "xform/stride.h"

namespace anc::xform {

namespace {

std::string
matrixStr(const IntMatrix &m)
{
    std::string s = "[";
    for (size_t i = 0; i < m.rows(); ++i) {
        if (i)
            s += "; ";
        IntVec row = m.row(i);
        for (size_t j = 0; j < row.size(); ++j)
            s += (j ? " " : "") + std::to_string(row[j]);
    }
    return s + "]";
}

/** The documented canonical candidate key: flattened transformation
 * rows compared lexicographically, then the scheme choice (planner's
 * pick before the forced round-robin variant). Selection, pruning and
 * the trail all run in this order, so the search result is a pure
 * function of the candidate SET. */
struct CanonicalKey
{
    IntVec flat;
    bool forceRoundRobin;

    bool
    operator<(const CanonicalKey &o) const
    {
        if (flat != o.flat)
            return flat < o.flat;
        return forceRoundRobin < o.forceRoundRobin;
    }
};

CanonicalKey
keyOf(const SearchCandidate &c)
{
    CanonicalKey k;
    k.forceRoundRobin = c.forceRoundRobin;
    k.flat.reserve(c.transform.rows() * c.transform.cols());
    for (size_t i = 0; i < c.transform.rows(); ++i)
        for (Int v : c.transform.row(i))
            k.flat.push_back(v);
    return k;
}

/** True when T is square, invertible and respects every dependence. */
bool
usableTransform(const IntMatrix &t, const IntMatrix &deps)
{
    if (t.rows() != t.cols() || t.rows() == 0)
        return false;
    try {
        if (determinant(t) == 0)
            return false;
        return deps::isLegalTransformation(t, deps);
    } catch (const Error &) {
        return false; // overflow in the check: not a usable candidate
    }
}

/** Deduplicating collector with a generation cap. */
struct CandidateSet
{
    std::map<CanonicalKey, SearchCandidate> byKey;
    size_t cap;

    explicit CandidateSet(size_t cap_) : cap(cap_) {}

    bool full() const { return byKey.size() >= cap; }

    void
    add(IntMatrix t, bool force_rr, std::string origin)
    {
        if (full())
            return;
        SearchCandidate c{std::move(t), force_rr, std::move(origin)};
        CanonicalKey k = keyOf(c);
        auto it = byKey.find(k);
        if (it == byKey.end())
            byKey.emplace(std::move(k), std::move(c));
        else if (c.origin < it->second.origin)
            it->second.origin = c.origin; // order-independent tie-break
    }
};

std::string
permStr(const std::vector<size_t> &perm)
{
    std::string s = "[";
    for (size_t i = 0; i < perm.size(); ++i)
        s += (i ? " " : "") + std::to_string(perm[i]);
    return s + "]";
}

/** Permutations x sign flips of the rows of `rows`, each completed by
 * `complete` (identity for an already-square matrix, LegalInvt padding
 * for a basis), legality-filtered into `out`. */
template <typename CompleteFn>
void
permuteRows(const IntMatrix &rows, const IntMatrix &deps,
            const std::string &what, CandidateSet &out,
            const CompleteFn &complete)
{
    size_t m = rows.rows();
    if (m == 0 || m > 6) // 6! * 2^6 is already past any sane cap
        return;
    std::vector<size_t> perm(m);
    std::iota(perm.begin(), perm.end(), 0);
    do {
        for (uint64_t signs = 0; signs < (uint64_t(1) << m); ++signs) {
            if (out.full())
                return;
            IntMatrix picked(0, rows.cols());
            for (size_t i = 0; i < m; ++i) {
                IntVec row = rows.row(perm[i]);
                if (signs >> i & 1)
                    for (Int &v : row)
                        v = checkedNeg(v);
                picked.appendRow(row);
            }
            IntMatrix t;
            try {
                t = complete(picked);
            } catch (const Error &) {
                continue; // not completable (e.g. basis not legal)
            }
            if (!usableTransform(t, deps))
                continue;
            std::string origin = what + " permutation " + permStr(perm);
            if (signs)
                origin += " signs " + std::to_string(signs);
            out.add(std::move(t), false, std::move(origin));
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
}

/** Alternate Padding completions: identity rows on every ordered tuple
 * of distinct columns, not just the non-pivot ones Algorithm Padding
 * picks. */
void
alternatePaddings(const IntMatrix &base, const IntMatrix &deps,
                  CandidateSet &out)
{
    size_t n = base.cols();
    size_t m = base.rows();
    if (m >= n)
        return;
    size_t need = n - m;
    std::vector<size_t> cols;
    std::function<void(void)> rec = [&]() {
        if (out.full())
            return;
        if (cols.size() == need) {
            IntMatrix t = base;
            for (size_t c : cols) {
                IntVec row(n, 0);
                row[c] = 1;
                t.appendRow(row);
            }
            if (usableTransform(t, deps))
                out.add(std::move(t), false,
                        "padding on columns " + permStr(cols));
            return;
        }
        for (size_t c = 0; c < n; ++c) {
            if (std::find(cols.begin(), cols.end(), c) != cols.end())
                continue;
            cols.push_back(c);
            rec();
            cols.pop_back();
        }
    };
    rec();
}

/** Stride/locality score of a planned candidate: lower is better. A
 * pure function of the nest and plan, used only to rank candidates for
 * pruning before the simulator spends real time on them. */
double
localityScore(const std::vector<RefStride> &strides,
              const numa::ExecutionPlan &plan)
{
    double score = 0.0;
    for (const RefStride &rs : strides) {
        if (!rs.constantStride())
            score += 6.0; // non-integral stride: never vectorizable
        if (!rs.singleDimension())
            score += 3.0; // multi-dimension variation per inner step
        double mag = 0.0;
        for (const Rational &s : rs.strides) {
            double v = double(s.num()) / double(s.den());
            mag += v < 0 ? -v : v;
        }
        score += mag > 8.0 ? 8.0 : mag; // large strides thrash locality
    }
    // Owner alignment and hoisted block transfers are what the search
    // is hunting for; reward plans that already exhibit them.
    if (plan.scheme != numa::PartitionScheme::RoundRobin)
        score -= 2.0;
    double hoists = double(plan.hoists.size());
    score -= hoists > 8.0 ? 8.0 : hoists;
    return score;
}

/** Per-candidate working state during evaluation. */
struct Evaluated
{
    size_t idx;       //!< index into the canonical candidate list
    std::optional<TransformedNest> nest;
    numa::ExecutionPlan plan;
    bool isHeuristic = false;
    bool planned = false;
    bool scoredOk = false;
    bool admissible = false;
    double total = 0.0;
};

void
tick(core::CancelToken *cancel)
{
    if (cancel)
        cancel->spend();
}

} // namespace

std::vector<SearchCandidate>
enumerateSearchCandidates(const ir::Program &prog,
                          const NormalizeResult &norm,
                          const SearchOptions &opts)
{
    (void)prog;
    std::vector<SearchCandidate> out;
    if (!norm.nest)
        return out;
    size_t cap = opts.maxEnumerated > 0 ? size_t(opts.maxEnumerated) : 1;
    CandidateSet set(cap);
    const IntMatrix &deps = norm.depMatrix;

    // The heuristic itself: always a candidate, so the searched plan
    // can never lose to it.
    set.add(norm.transform, false, "heuristic");

    // Row permutations / sign flips of the final transformation (inner
    // interchanges and reversals, padding reorderings).
    permuteRows(norm.transform, deps, "transform", set,
                [](const IntMatrix &m) { return m; });

    // Row permutations / sign flips of the legal basis, re-padded by
    // LegalInvt (which rejects non-legal inputs by throwing).
    if (norm.legal.rows() > 0 && norm.legal.rows() < norm.transform.rows())
        permuteRows(norm.legal, deps, "legal-basis", set,
                    [&deps](const IntMatrix &m) {
                        return legalInvertible(m, deps);
                    });

    // Alternate Padding completions of the legal basis.
    if (norm.legal.rows() > 0)
        alternatePaddings(norm.legal, deps, set);

    // Every transformation additionally gets a forced round-robin
    // scheme variant (cases ii/iii of Section 7 applied by choice).
    std::vector<SearchCandidate> uniques;
    uniques.reserve(set.byKey.size());
    for (const auto &kv : set.byKey)
        uniques.push_back(kv.second);
    for (const SearchCandidate &c : uniques) {
        if (set.full())
            break;
        set.add(c.transform, true, c.origin + " + round-robin");
    }

    out.reserve(set.byKey.size());
    for (auto &kv : set.byKey)
        out.push_back(std::move(kv.second));
    return out;
}

SearchResult
searchOverCandidates(const ir::Program &prog, const NormalizeResult &norm,
                     const numa::ExecutionPlan &heuristic_plan,
                     std::vector<SearchCandidate> candidates,
                     const SearchOptions &opts, core::CancelToken *cancel)
{
    SearchResult r;
    r.processorSweep = opts.processorSweep;
    r.transform = norm.transform;
    r.nest = norm.nest;
    r.plan = heuristic_plan;
    if (!norm.nest || opts.processorSweep.empty())
        return r;
    r.ran = true;

    // Canonical order first: the rest of the pipeline must be a pure
    // function of the candidate SET, not of enumeration order.
    std::map<CanonicalKey, SearchCandidate> byKey;
    for (SearchCandidate &c : candidates) {
        CanonicalKey k = keyOf(c);
        auto it = byKey.find(k);
        if (it == byKey.end())
            byKey.emplace(std::move(k), std::move(c));
        else if (c.origin < it->second.origin)
            it->second.origin = c.origin;
    }
    std::vector<SearchCandidate> ordered;
    ordered.reserve(byKey.size());
    for (auto &kv : byKey)
        ordered.push_back(std::move(kv.second));
    r.enumerated = ordered.size();

    // --- Plan every candidate and compute its locality score.
    std::vector<Evaluated> evals;
    r.trail.resize(ordered.size());
    for (size_t i = 0; i < ordered.size(); ++i) {
        const SearchCandidate &c = ordered[i];
        SearchScore &t = r.trail[i];
        t.transform = matrixStr(c.transform);
        t.origin = c.origin;
        Evaluated ev;
        ev.idx = i;
        ev.isHeuristic =
            !c.forceRoundRobin && c.transform == norm.transform;
        try {
            tick(cancel);
            ev.nest = ev.isHeuristic
                          ? *norm.nest
                          : applyTransform(prog, c.transform);
            ev.plan = ev.isHeuristic
                          ? heuristic_plan
                          : codegen::planCodegen(prog, *ev.nest,
                                                 norm.depMatrix,
                                                 &norm.access);
        } catch (const core::DeadlineExceeded &) {
            throw;
        } catch (const UserError &e) {
            t.verdict = "rejected";
            t.detail = std::string("transform not applicable: ") +
                       e.what();
            continue;
        } catch (const Error &e) {
            t.verdict = "rejected";
            t.detail = e.what();
            continue;
        }
        if (c.forceRoundRobin) {
            if (ev.plan.scheme == numa::PartitionScheme::RoundRobin) {
                t.verdict = "redundant";
                t.detail = "planner already chose round-robin";
                continue;
            }
            ev.plan.scheme = numa::PartitionScheme::RoundRobin;
            ev.plan.alignedArray.reset();
            ev.plan.rationale += "; search forced round-robin";
            ev.plan.tieBreak.clear();
        }
        const char *schemes[] = {"round-robin", "owner-wrapped",
                                 "owner-blocked", "owner-block2d"};
        t.scheme = schemes[size_t(ev.plan.scheme)];
        t.locality = localityScore(analyzeInnerStrides(*ev.nest), ev.plan);
        ev.planned = true;
        evals.push_back(std::move(ev));
    }

    // --- Prune: keep the `budget` best locality scores (heuristic
    // always survives). Stable on the canonical order.
    size_t budget = opts.budget > 0 ? size_t(opts.budget) : 1;
    std::vector<size_t> rank(evals.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::stable_sort(rank.begin(), rank.end(),
                     [&](size_t a, size_t b) {
                         double la = r.trail[evals[a].idx].locality;
                         double lb = r.trail[evals[b].idx].locality;
                         if (la != lb)
                             return la < lb;
                         return evals[a].idx < evals[b].idx;
                     });
    std::vector<char> keep(evals.size(), 0);
    size_t kept = 0;
    for (size_t k : rank) {
        if (kept < budget || evals[k].isHeuristic) {
            keep[k] = 1;
            ++kept;
        }
    }
    for (size_t k = 0; k < evals.size(); ++k)
        if (!keep[k]) {
            SearchScore &t = r.trail[evals[k].idx];
            t.verdict = "pruned";
            t.detail = "locality score outside the top " +
                       std::to_string(budget);
            ++r.pruned;
        }
    std::vector<Evaluated> survivors;
    survivors.reserve(kept);
    for (size_t k = 0; k < evals.size(); ++k)
        if (keep[k])
            survivors.push_back(std::move(evals[k]));
    evals = std::move(survivors);

    // --- Score the survivors with the symmetry-aggregated simulator.
    ir::Bindings binds{IntVec(prog.params.size(), opts.paramValue),
                       std::vector<double>(prog.scalars.size(), 1.0)};
    const Evaluated *heur = nullptr;
    for (Evaluated &ev : evals) {
        SearchScore &t = r.trail[ev.idx];
        t.simTimesUs.clear();
        bool failed = false;
        for (Int p : opts.processorSweep) {
            tick(cancel); // small step budget per simulated run
            numa::SimOptions sopts;
            sopts.processors = p;
            sopts.machine = opts.machine;
            sopts.symmetry = numa::SymmetryMode::Auto;
            sopts.hostThreads = opts.hostThreads;
            try {
                numa::Simulator sim(prog, *ev.nest, ev.plan, sopts);
                t.simTimesUs.push_back(
                    sim.run(binds).parallelTime());
            } catch (const core::DeadlineExceeded &) {
                throw;
            } catch (const UserError &e) {
                t.verdict = "rejected";
                t.detail = std::string("not simulable: ") + e.what();
                failed = true;
                break;
            } catch (const Error &e) {
                t.verdict = "rejected";
                t.detail = std::string("simulation failed: ") + e.what();
                failed = true;
                break;
            }
        }
        if (failed) {
            t.simTimesUs.clear();
            continue;
        }
        ev.scoredOk = true;
        ++r.scored;
        t.totalUs = 0.0;
        for (double v : t.simTimesUs)
            t.totalUs += v;
        ev.total = t.totalUs;
        if (ev.isHeuristic)
            heur = &ev;
    }
    if (!heur) {
        // The heuristic itself failed to score: nothing to anchor
        // admissibility, return it unchanged.
        for (SearchScore &t : r.trail)
            if (t.verdict.empty())
                t.verdict = "scored";
        return r;
    }
    r.heuristicTimesUs = r.trail[heur->idx].simTimesUs;

    // --- Admissibility: beat-or-tie the heuristic at EVERY swept size.
    for (Evaluated &ev : evals) {
        if (!ev.scoredOk)
            continue;
        SearchScore &t = r.trail[ev.idx];
        ev.admissible = true;
        for (size_t j = 0; j < t.simTimesUs.size(); ++j)
            if (t.simTimesUs[j] > r.heuristicTimesUs[j]) {
                ev.admissible = false;
                break;
            }
        t.verdict = ev.admissible ? "scored" : "inadmissible";
        if (!ev.admissible)
            t.detail = "slower than the heuristic at some swept size";
    }

    // --- Select: minimum total among admissible candidates; ties go to
    // the earliest canonical key. Validate any non-heuristic winner
    // symbolically; a validation failure discards it and the next-best
    // admissible candidate is tried.
    std::vector<Evaluated *> order;
    for (Evaluated &ev : evals)
        if (ev.admissible)
            order.push_back(&ev);
    std::stable_sort(order.begin(), order.end(),
                     [](const Evaluated *a, const Evaluated *b) {
                         if (a->total != b->total)
                             return a->total < b->total;
                         // A candidate that merely ties the heuristic
                         // is no improvement: prefer the incumbent.
                         if (a->isHeuristic != b->isHeuristic)
                             return a->isHeuristic;
                         return a->idx < b->idx;
                     });
    for (Evaluated *ev : order) {
        SearchScore &t = r.trail[ev->idx];
        bool tie = false;
        for (const Evaluated *other : order)
            if (other != ev && other->total == ev->total)
                tie = true;
        if (!ev->isHeuristic) {
            verify::ValidateOptions vopts;
            vopts.cancel = cancel;
            verify::ValidationReport report = verify::validate(
                prog, *ev->nest, norm.depMatrix, vopts);
            if (!report.passed()) {
                t.verdict = "failed-validation";
                t.detail = report.firstFailure();
                continue;
            }
        }
        t.verdict = "winner";
        r.winnerOrigin = t.origin;
        r.winnerTimesUs = t.simTimesUs;
        if (tie)
            r.tieBreak =
                ev->isHeuristic
                    ? "total simulated time tied; kept the heuristic "
                      "(a tie is no improvement)"
                    : "total simulated time tied; picked the smallest "
                      "canonical key (lexicographic transform rows, "
                      "then planner scheme before forced round-robin)";
        r.improved = !ev->isHeuristic && ev->total < heur->total;
        if (!ev->isHeuristic) {
            r.transform = ordered[ev->idx].transform;
            r.nest = std::move(ev->nest);
            r.plan = std::move(ev->plan);
        }
        return r;
    }
    return r; // nothing admissible validated: heuristic stands
}

SearchResult
searchPlan(const ir::Program &prog, const NormalizeResult &norm,
           const numa::ExecutionPlan &heuristic_plan,
           const SearchOptions &opts, core::CancelToken *cancel)
{
    return searchOverCandidates(
        prog, norm, heuristic_plan,
        enumerateSearchCandidates(prog, norm, opts), opts, cancel);
}

} // namespace anc::xform
