#include "numa/recovery.h"

#include <cstring>

namespace anc::numa {

void
RetryPolicy::validate() const
{
    if (maxAttempts < 1 || maxAttempts > 16)
        throw UserError("RetryPolicy::maxAttempts must be in [1, 16]");
    if (backoffBase < 1 || backoffBase > 4)
        throw UserError("RetryPolicy::backoffBase must be in [1, 4]");
}

uint64_t
backoffUnitsFor(int failures, int base)
{
    if (failures <= 0)
        return 0;
    if (base <= 1)
        return uint64_t(failures);
    uint64_t sum = 0, pow = 1;
    for (int i = 0; i < failures; ++i) {
        sum += pow;
        pow *= uint64_t(base);
    }
    return sum;
}

TransferBatchOutcome
chargeTransferBatch(ProcStats &ps, const FaultOptions &f,
                    const RetryPolicy &rp, uint64_t firstIdx,
                    uint64_t total, uint64_t elemsPerTransfer,
                    size_t arrayId, size_t numArrays)
{
    TransferBatchOutcome out;
    out.completed = total;
    if (total == 0)
        return out;
    uint64_t lo = firstIdx + 1, hi = firstIdx + total;
    int fpe = f.failuresPerEvent < 1 ? 1 : f.failuresPerEvent;

    uint64_t drops =
        faultsInRange(f.dropTransferAt, f.dropTransferEvery, lo, hi);
    if (drops != 0) {
        if (fpe >= rp.maxAttempts) {
            // Every armed transfer exhausts its attempts and is
            // abandoned: all maxAttempts sends failed (counted as
            // retries, since none is the fault-free charge), the
            // sender backed off maxAttempts - 1 times, and the block's
            // elements fall back to element-wise remote access.
            out.abandoned = drops;
            out.completed = total - drops;
            ps.transferRetries += drops * uint64_t(rp.maxAttempts);
            ps.recoveryElements +=
                drops * uint64_t(rp.maxAttempts) * elemsPerTransfer;
            ps.backoffUnits +=
                drops * backoffUnitsFor(rp.maxAttempts - 1, rp.backoffBase);
            ps.abandonedTransfers += drops;
            chargeAbandonedElements(ps, arrayId, numArrays,
                                    drops * elemsPerTransfer);
        } else {
            // fpe failed sends, then success; the successful send is
            // the caller's fault-free charge.
            ps.transferRetries += drops * uint64_t(fpe);
            ps.recoveryElements +=
                drops * uint64_t(fpe) * elemsPerTransfer;
            ps.backoffUnits += drops * backoffUnitsFor(fpe, rp.backoffBase);
        }
    }

    // Corruption is detected by checksum on arrival, so it can only hit
    // transfers that completed; a transfer armed for both drop and
    // corruption is counted as dropped (drop wins).
    uint64_t corrupt =
        faultsInRange(f.corruptTransferAt, f.corruptTransferEvery, lo, hi);
    if (corrupt != 0 && drops != 0)
        corrupt -= faultsInRangeBoth(f.dropTransferAt, f.dropTransferEvery,
                                     f.corruptTransferAt,
                                     f.corruptTransferEvery, lo, hi);
    if (corrupt != 0) {
        ps.transferRefetches += corrupt;
        ps.recoveryElements += corrupt * elemsPerTransfer;
        ps.backoffUnits += corrupt; // one unit before each re-fetch
    }
    return out;
}

void
chargeRemoteBatch(ProcStats &ps, const FaultOptions &f,
                  const RetryPolicy &rp, uint64_t firstIdx, uint64_t total)
{
    if (total == 0 || (f.remoteFailAt == 0 && f.remoteFailEvery == 0))
        return;
    uint64_t faults = faultsInRange(f.remoteFailAt, f.remoteFailEvery,
                                    firstIdx + 1, firstIdx + total);
    if (faults == 0)
        return;
    int fpe = f.failuresPerEvent < 1 ? 1 : f.failuresPerEvent;
    if (fpe >= rp.maxAttempts) {
        // maxAttempts - 1 retries fail too; the access escalates to a
        // synchronous acknowledged fetch (one sync) and succeeds.
        ps.remoteRetries += faults * uint64_t(rp.maxAttempts - 1);
        ps.backoffUnits +=
            faults * backoffUnitsFor(rp.maxAttempts - 1, rp.backoffBase);
        ps.syncs += faults;
    } else {
        ps.remoteRetries += faults * uint64_t(fpe);
        ps.backoffUnits += faults * backoffUnitsFor(fpe, rp.backoffBase);
    }
}

uint64_t
fletcher64(const double *data, size_t n)
{
    // Fletcher's checksum over the 32-bit halves of the payload,
    // mod 2^32 - 1; position-sensitive, unlike a plain sum.
    uint64_t s1 = 0, s2 = 0;
    const uint64_t mod = 0xffffffffull;
    for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &data[i], sizeof bits);
        s1 = (s1 + (bits & mod)) % mod;
        s2 = (s2 + s1) % mod;
        s1 = (s1 + (bits >> 32)) % mod;
        s2 = (s2 + s1) % mod;
    }
    return (s2 << 32) | s1;
}

} // namespace anc::numa
