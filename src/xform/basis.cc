#include "xform/basis.h"

#include "ratmath/linalg.h"

namespace anc::xform {

IntMatrix
BasisResult::permutation(size_t input_rows) const
{
    IntMatrix p(input_rows, input_rows);
    std::vector<bool> used(input_rows, false);
    size_t r = 0;
    for (size_t k : keptRows) {
        p(r++, k) = 1;
        used[k] = true;
    }
    for (size_t k = 0; k < input_rows; ++k)
        if (!used[k])
            p(r++, k) = 1;
    return p;
}

BasisResult
basisMatrix(const IntMatrix &access)
{
    BasisResult out;
    out.keptRows = firstRowBasis(access);
    out.basis = IntMatrix(out.keptRows.size(), access.cols());
    for (size_t i = 0; i < out.keptRows.size(); ++i)
        for (size_t j = 0; j < access.cols(); ++j)
            out.basis(i, j) = access(out.keptRows[i], j);
    return out;
}

IntMatrix
paddingMatrix(const IntMatrix &basis)
{
    size_t m = basis.rows(), n = basis.cols();
    if (m > 0 && rank(basis) != m)
        throw InternalError("paddingMatrix requires full row rank");
    std::vector<size_t> pivots = firstColumnBasis(basis);
    std::vector<bool> is_pivot(n, false);
    for (size_t c : pivots)
        is_pivot[c] = true;
    IntMatrix h(n - m, n);
    size_t r = 0;
    for (size_t c = 0; c < n; ++c)
        if (!is_pivot[c])
            h(r++, c) = 1;
    if (r != n - m)
        throw InternalError("paddingMatrix row count mismatch");
    return h;
}

IntMatrix
padToInvertible(const IntMatrix &basis)
{
    IntMatrix t = basis;
    IntMatrix h = paddingMatrix(basis);
    for (size_t i = 0; i < h.rows(); ++i)
        t.appendRow(h.row(i));
    if (determinant(t) == 0)
        throw InternalError("padding failed to produce invertible matrix");
    return t;
}

} // namespace anc::xform
