/**
 * @file
 * Convenience builder for constructing Program IR directly from C++.
 *
 * The DSL parser (dsl::parseProgram) is the primary front end; this
 * builder serves tests, benchmarks and programmatic clients. Declare the
 * nest depth up front and all parameters/scalars before constructing any
 * expression (affine shapes are fixed at that point).
 */

#ifndef ANC_IR_BUILDER_H
#define ANC_IR_BUILDER_H

#include <utility>

#include "ir/loop_nest.h"

namespace anc::ir {

class ProgramBuilder
{
  public:
    explicit ProgramBuilder(size_t depth) : depth_(depth)
    {
        prog_.nest.loops().resize(0);
    }

    /** Declare a parameter (before any expression is built). */
    size_t
    param(const std::string &name)
    {
        if (frozen_)
            throw InternalError("declare parameters before expressions");
        prog_.params.push_back(name);
        return prog_.params.size() - 1;
    }

    /** Declare a runtime scalar symbol (alpha, beta, ...). */
    size_t
    scalar(const std::string &name)
    {
        prog_.scalars.push_back(name);
        return prog_.scalars.size() - 1;
    }

    /** Declare an array; extents are affine in the parameters. */
    size_t
    array(const std::string &name, std::vector<AffineExpr> extents,
          DistributionSpec dist = DistributionSpec::replicated())
    {
        freeze();
        for (AffineExpr &e : extents) {
            if (e.numVars() == depth_) {
                // Allow extents written with the nest-wide shape; they
                // must not actually use loop variables.
                if (e.innermostVar() >= 0)
                    throw UserError("array extent uses a loop variable");
                AffineExpr p(0, prog_.params.size());
                for (size_t q = 0; q < prog_.params.size(); ++q)
                    p.paramCoeff(q) = e.paramCoeff(q);
                p.constantTerm() = e.constantTerm();
                e = p;
            }
        }
        prog_.arrays.push_back({name, std::move(extents), dist});
        return prog_.arrays.size() - 1;
    }

    /** Open the next loop level with one lower and one upper bound. */
    size_t
    loop(const std::string &var, AffineExpr lower, AffineExpr upper)
    {
        freeze();
        Loop l;
        l.var = var;
        l.lower.push_back(std::move(lower));
        l.upper.push_back(std::move(upper));
        prog_.nest.loops().push_back(std::move(l));
        if (prog_.nest.depth() > depth_)
            throw InternalError("more loops than declared depth");
        return prog_.nest.depth() - 1;
    }

    /** Add an extra lower bound (bounds combine with max). */
    void
    addLower(size_t level, AffineExpr e)
    {
        prog_.nest.loops()[level].lower.push_back(std::move(e));
    }

    /** Add an extra upper bound (bounds combine with min). */
    void
    addUpper(size_t level, AffineExpr e)
    {
        prog_.nest.loops()[level].upper.push_back(std::move(e));
    }

    /** Affine expression for loop variable k. */
    AffineExpr
    var(size_t k)
    {
        freeze();
        return AffineExpr::variable(k, depth_, prog_.params.size());
    }

    /** Affine expression for parameter p. */
    AffineExpr
    par(size_t p)
    {
        freeze();
        return AffineExpr::parameter(p, depth_, prog_.params.size());
    }

    /** Affine constant. */
    AffineExpr
    cst(Int c)
    {
        freeze();
        return AffineExpr::constant(Rational(c), depth_,
                                    prog_.params.size());
    }

    /** Reference array a with the given subscripts. */
    ArrayRef
    ref(size_t a, std::vector<AffineExpr> subs)
    {
        return ArrayRef{a, std::move(subs)};
    }

    /** Append the statement lhs = rhs to the body. */
    void
    assign(ArrayRef lhs, Expr rhs)
    {
        prog_.nest.body().push_back({std::move(lhs), std::move(rhs)});
    }

    /** Finish: validate and return the program. */
    Program
    build()
    {
        if (prog_.nest.depth() != depth_)
            throw InternalError("declared depth does not match loops");
        prog_.validate();
        return prog_;
    }

  private:
    size_t depth_;
    bool frozen_ = false;
    Program prog_;

    void freeze() { frozen_ = true; }
};

} // namespace anc::ir

#endif // ANC_IR_BUILDER_H
