#include "core/diagnostics.h"

#include <sstream>

namespace anc::core {

const char *
severityName(Severity s)
{
    switch (s) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Parse:
        return "parse";
    case Stage::Validate:
        return "validate";
    case Stage::Dependence:
        return "dependence-analysis";
    case Stage::Normalize:
        return "normalization";
    case Stage::Legality:
        return "legality";
    case Stage::Transform:
        return "transform";
    case Stage::Plan:
        return "codegen-planning";
    case Stage::StrengthReduce:
        return "strength-reduction";
    case Stage::Emit:
        return "emit";
    case Stage::DifferentialCheck:
        return "differential-check";
    case Stage::TranslationValidate:
        return "translation-validate";
    case Stage::Driver:
        return "driver";
    }
    return "unknown";
}

namespace {

std::string
quoteEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

/** JSON string escaping per RFC 8259 (control chars as \u00XX). */
std::string
jsonQuoted(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out.push_back(hex[c >> 4]);
                out.push_back(hex[c & 0xf]);
            } else {
                out.push_back(char(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << severityName(severity) << " [" << stageName(stage) << "]";
    if (line >= 0)
        os << " line " << line;
    os << ": " << message;
    if (!detail.empty())
        os << " (" << detail << ")";
    if (!origin.empty())
        os << " [request " << origin << "]";
    return os.str();
}

std::string
Diagnostic::renderMachine() const
{
    std::ostringstream os;
    os << "severity=" << severityName(severity)
       << " stage=" << stageName(stage) << " line=" << line
       << " message=" << quoteEscaped(message)
       << " detail=" << quoteEscaped(detail)
       << " origin=" << quoteEscaped(origin);
    return os.str();
}

std::string
Diagnostic::renderJson() const
{
    std::ostringstream os;
    os << "{\"severity\": " << jsonQuoted(severityName(severity))
       << ", \"stage\": " << jsonQuoted(stageName(stage))
       << ", \"line\": " << line
       << ", \"message\": " << jsonQuoted(message)
       << ", \"detail\": " << jsonQuoted(detail)
       << ", \"origin\": " << jsonQuoted(origin) << "}";
    return os.str();
}

void
Diagnostics::note(Stage stage, std::string message, std::string detail)
{
    add({Severity::Note, stage, std::move(message), std::move(detail), -1});
}

void
Diagnostics::warning(Stage stage, std::string message, std::string detail)
{
    add({Severity::Warning, stage, std::move(message), std::move(detail),
         -1});
}

void
Diagnostics::error(Stage stage, std::string message, std::string detail)
{
    add({Severity::Error, stage, std::move(message), std::move(detail),
         -1});
}

bool
Diagnostics::hasErrors() const
{
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

bool
Diagnostics::hasWarnings() const
{
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::Warning)
            return true;
    return false;
}

void
Diagnostics::stampOrigin(const std::string &origin)
{
    for (Diagnostic &d : diags_)
        if (d.origin.empty())
            d.origin = origin;
}

bool
Diagnostics::mentionsStage(Stage stage) const
{
    for (const Diagnostic &d : diags_)
        if (d.stage == stage)
            return true;
    return false;
}

std::string
Diagnostics::render() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diags_)
        os << d.render() << "\n";
    return os.str();
}

std::string
Diagnostics::renderMachine() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diags_)
        os << d.renderMachine() << "\n";
    return os.str();
}

std::string
Diagnostics::renderJson() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < diags_.size(); ++i)
        os << (i ? ", " : "") << diags_[i].renderJson();
    os << "]";
    return os.str();
}

} // namespace anc::core
