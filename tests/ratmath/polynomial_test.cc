/**
 * @file
 * Exact multivariate polynomials and the Faulhaber power-sum machinery
 * the symbolic trip-count derivation is built on. The load-bearing
 * properties: Bernoulli numbers match the B_1 = +1/2 convention, every
 * Faulhaber polynomial telescopes as an identity (checked at many
 * integer points, negative included), and sumOverSymbol agrees with
 * brute-force summation for every small range.
 */

#include <gtest/gtest.h>

#include "ratmath/polynomial.h"

namespace anc {
namespace {

Rational
rat(Int n, Int d = 1)
{
    return Rational(n, d);
}

TEST(PolynomialTest, ConstantAndSymbolBasics)
{
    Polynomial c = Polynomial::constant(rat(5), 2);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.constantValue(), rat(5));
    EXPECT_EQ(c.totalDegree(), 0u);

    Polynomial x = Polynomial::symbol(0, 2);
    Polynomial y = Polynomial::symbol(1, 2);
    EXPECT_FALSE(x.isConstant());
    EXPECT_EQ(x.totalDegree(), 1u);
    EXPECT_EQ(x.evaluate({rat(7), rat(0)}), rat(7));
    EXPECT_EQ(y.evaluate({rat(7), rat(9)}), rat(9));

    Polynomial zero = Polynomial::constant(rat(0), 2);
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(x + zero, x);
    EXPECT_EQ(x - x, zero);
}

TEST(PolynomialTest, ArithmeticMatchesEvaluation)
{
    // (x + 2y - 3)(x - y) evaluated symbolically == evaluated pointwise.
    Polynomial x = Polynomial::symbol(0, 2);
    Polynomial y = Polynomial::symbol(1, 2);
    Polynomial a = x + y.scaled(rat(2)) - Polynomial::constant(rat(3), 2);
    Polynomial b = x - y;
    Polynomial prod = a * b;
    EXPECT_EQ(prod.totalDegree(), 2u);
    for (Int xv = -4; xv <= 4; ++xv)
        for (Int yv = -4; yv <= 4; ++yv) {
            RatVec at = {rat(xv), rat(yv)};
            EXPECT_EQ(prod.evaluate(at),
                      a.evaluate(at) * b.evaluate(at))
                << "x=" << xv << " y=" << yv;
        }
}

TEST(PolynomialTest, AffineAndPow)
{
    // (2N - 1)^3 at N = 5 is 729.
    Polynomial aff = Polynomial::affine({rat(2)}, rat(-1));
    Polynomial cube = aff.pow(3);
    EXPECT_EQ(cube.totalDegree(), 3u);
    EXPECT_EQ(cube.evaluate({rat(5)}), rat(729));
    EXPECT_EQ(aff.pow(0), Polynomial::constant(rat(1), 1));
}

TEST(PolynomialTest, RenderingIsReadable)
{
    Polynomial n = Polynomial::symbol(0, 2);
    Polynomial b = Polynomial::symbol(1, 2);
    Polynomial p = n.pow(2) - (n * b).scaled(rat(3, 2));
    std::string s = p.str({"N", "b"});
    EXPECT_NE(s.find("N^2"), std::string::npos) << s;
    EXPECT_NE(s.find("N*b"), std::string::npos) << s;
    EXPECT_NE(s.find("3/2"), std::string::npos) << s;
}

TEST(PolynomialTest, BernoulliNumbersMatchThePlusHalfConvention)
{
    // B_1 = +1/2 (the "B+" convention): this is the one under which
    // F_p(M) - F_p(M-1) == M^p telescopes exactly.
    EXPECT_EQ(bernoulli(0), rat(1));
    EXPECT_EQ(bernoulli(1), rat(1, 2));
    EXPECT_EQ(bernoulli(2), rat(1, 6));
    EXPECT_EQ(bernoulli(3), rat(0));
    EXPECT_EQ(bernoulli(4), rat(-1, 30));
    EXPECT_EQ(bernoulli(5), rat(0));
    EXPECT_EQ(bernoulli(6), rat(1, 42));
    EXPECT_EQ(bernoulli(8), rat(-1, 30));
    EXPECT_EQ(bernoulli(10), rat(5, 66));
    EXPECT_EQ(bernoulli(12), rat(-691, 2730));
}

TEST(PolynomialTest, FaulhaberMatchesClassicClosedForms)
{
    Polynomial m = Polynomial::symbol(0, 1);
    // F_1(M) = M(M+1)/2, F_2(M) = M(M+1)(2M+1)/6, F_3(M) = (M(M+1)/2)^2.
    for (Int M = 0; M <= 20; ++M) {
        RatVec at = {rat(M)};
        EXPECT_EQ(faulhaber(1, m).evaluate(at), rat(M * (M + 1), 2));
        EXPECT_EQ(faulhaber(2, m).evaluate(at),
                  rat(M * (M + 1) * (2 * M + 1), 6));
        Rational t = rat(M * (M + 1), 2);
        EXPECT_EQ(faulhaber(3, m).evaluate(at), t * t);
    }
}

TEST(PolynomialTest, FaulhaberTelescopesAsAnIdentity)
{
    // F_p(M) - F_p(M-1) == M^p for all integers M, including negative
    // ones -- this is what makes sum_{x=L}^{U} valid for any integer
    // endpoints with U >= L-1, parameters included.
    Polynomial m = Polynomial::symbol(0, 1);
    Polynomial one = Polynomial::constant(rat(1), 1);
    for (uint32_t p = 0; p <= 8; ++p) {
        Polynomial diff = faulhaber(p, m) - faulhaber(p, m - one);
        EXPECT_EQ(diff, m.pow(p)) << "p=" << p;
    }
}

TEST(PolynomialTest, SumOverSymbolMatchesBruteForce)
{
    // sum_{y=lo}^{hi} (x^2 + 3xy + y^2) over constant ranges, checked
    // against direct summation at several x.
    Polynomial x = Polynomial::symbol(0, 2);
    Polynomial y = Polynomial::symbol(1, 2);
    Polynomial p = x.pow(2) + (x * y).scaled(rat(3)) + y.pow(2);
    for (Int lo = -3; lo <= 3; ++lo)
        for (Int hi = lo - 1; hi <= lo + 5; ++hi) {
            Polynomial s = sumOverSymbol(
                p, 1, Polynomial::constant(rat(lo), 2),
                Polynomial::constant(rat(hi), 2));
            for (Int xv = -2; xv <= 2; ++xv) {
                Rational want = rat(0);
                for (Int yv = lo; yv <= hi; ++yv)
                    want = want + p.evaluate({rat(xv), rat(yv)});
                EXPECT_EQ(s.evaluate({rat(xv), rat(0)}), want)
                    << "lo=" << lo << " hi=" << hi << " x=" << xv;
            }
        }
}

TEST(PolynomialTest, SumOverSymbolWithSymbolicBounds)
{
    // The triangular nest: sum_{j=0}^{i-1} 1 == i, and then
    // sum_{i=0}^{N-1} i == N(N-1)/2 -- the SYR2K-shaped trip count.
    Polynomial one = Polynomial::constant(rat(1), 2);
    Polynomial i = Polynomial::symbol(0, 2); // symbol 0 = i
    Polynomial zero = Polynomial::constant(rat(0), 2);
    Polynomial inner =
        sumOverSymbol(one, 1, zero, i - one); // over j: yields i
    EXPECT_EQ(inner, i);
    // Re-use symbol 1 as N (inner no longer mentions symbol 1).
    Polynomial n = Polynomial::symbol(1, 2);
    Polynomial total = sumOverSymbol(inner, 0, zero, n - one);
    for (Int N = 0; N <= 12; ++N)
        EXPECT_EQ(total.evaluate({rat(0), rat(N)}),
                  rat(N * (N - 1), 2))
            << "N=" << N;
}

TEST(PolynomialTest, SumOverSymbolRejectsBoundsMentioningTheSymbol)
{
    Polynomial x = Polynomial::symbol(0, 1);
    EXPECT_THROW(sumOverSymbol(x, 0, x, x), Error);
}

} // namespace
} // namespace anc
