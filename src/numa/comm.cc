#include "numa/comm.h"

#include <algorithm>
#include <map>
#include <utility>

#include "numa/congruent.h"

namespace anc::numa {

namespace {

/**
 * Number of members p of range `ra` (a class of representative rep_a)
 * whose translated owner (owner + p - rep_a) mod P lands in range
 * `rb`. Closed form for the shapes the symmetry planner emits
 * (singletons and equal-step residue cycles); a bounded incremental
 * fallback covers anything else.
 */
uint64_t
pairCount(const ProcRange &ra, Int rep_a, const ProcRange &rb, Int owner,
          Int P)
{
    if (ra.count <= 0 || rb.count <= 0)
        return 0;
    // Owner seen by member i of ra: a0 + i*sa (mod P).
    Int a0 = euclidMod(
        checkedAdd(owner, checkedSub(euclidMod(ra.first, P),
                                     euclidMod(rep_a, P))),
        P);
    Int b0 = euclidMod(rb.first, P);
    Int sa = euclidMod(ra.step, P);
    Int sb = euclidMod(rb.step, P);
    uint64_t ca = uint64_t(ra.count), cb = uint64_t(rb.count);

    if (ca == 1)
        return countCongruent(b0, sb, cb, P, a0).hits ? 1 : 0;
    if (cb == 1)
        return countCongruent(a0, sa, ca, P, b0).hits;
    if (sa == sb) {
        // a0 + i*s == b0 + j*s (mod P)  <=>  (i - j)*s == b0 - a0.
        Int s = sa;
        Int g = gcdInt(s, P);
        Int L = g == 0 ? 1 : P / g;
        if (Int(ca) <= L && Int(cb) <= L) {
            Int rhs = euclidMod(checkedSub(b0, a0), P);
            if (g == 0 || rhs % g != 0)
                return rhs == 0 ? ca * cb : 0; // s == 0: all-or-nothing
            Int inv = euclidMod(extGcd(s / g, L).x, L);
            Int d0 = Int((Int128(rhs / g) * Int128(inv)) % Int128(L));
            auto pairs_at = [&](Int d) -> uint64_t {
                // i = j + d with i in [0, ca), j in [0, cb).
                Int jlo = std::max<Int>(0, -d);
                Int jhi = std::min<Int>(Int(cb) - 1, Int(ca) - 1 - d);
                return jhi >= jlo ? uint64_t(jhi - jlo + 1) : 0;
            };
            return pairs_at(d0) + pairs_at(d0 - L);
        }
    }
    // Incremental fallback over the smaller side (kept bounded: the
    // planner's classes are either singletons or equal-step cycles, so
    // this path only sees small ranges).
    constexpr uint64_t kFallbackCap = uint64_t(1) << 16;
    if (std::min(ca, cb) > kFallbackCap)
        throw InternalError(
            "comm fold: unsupported symmetry-range pair shape");
    uint64_t n = 0;
    if (ca <= cb) {
        Int cur = a0;
        for (uint64_t i = 0; i < ca; ++i) {
            if (countCongruent(b0, sb, cb, P, cur).hits)
                ++n;
            cur += sa;
            if (cur >= P)
                cur -= P;
        }
    } else {
        Int cur = b0;
        for (uint64_t j = 0; j < cb; ++j) {
            n += countCongruent(a0, sa, ca, P, cur).hits;
            cur += sb;
            if (cur >= P)
                cur -= P;
        }
    }
    return n;
}

void
translateRow(const std::vector<obs::CommEdge> &rep_row, Int t, Int P,
             std::vector<obs::CommEdge> &out)
{
    out = rep_row;
    if (t == 0)
        return;
    for (obs::CommEdge &e : out)
        e.owner = euclidMod(checkedAdd(e.owner, t), P);
    std::sort(out.begin(), out.end(),
              [](const obs::CommEdge &a, const obs::CommEdge &b) {
                  return a.owner < b.owner;
              });
}

} // namespace

obs::CommMatrix
buildCommMatrix(const SimStats &stats, uint64_t materialize_budget)
{
    obs::CommMatrix out;
    out.processors = stats.processors;

    if (!stats.aggregated) {
        for (const ProcStats &p : stats.perProc) {
            if (p.comm.empty())
                continue;
            obs::CommMatrix::Row row;
            row.origin = p.proc;
            row.edges = p.comm;
            out.rows.push_back(std::move(row));
        }
        std::sort(out.rows.begin(), out.rows.end(),
                  [](const obs::CommMatrix::Row &a,
                     const obs::CommMatrix::Row &b) {
                      return a.origin < b.origin;
                  });
        return out;
    }

    const Int P = stats.processors;

    // Expansion estimate: per-processor rows for every member of every
    // class that has traffic. Within budget, expand (owners translated
    // by the member offset) so the export is byte-identical to a
    // direct run's; past it, fold to class-pair cells.
    unsigned __int128 need = 0;
    for (const ProcClass &c : stats.classes)
        if (!c.rep.comm.empty())
            need += (unsigned __int128)c.multiplicity *
                    (sizeof(obs::CommMatrix::Row) +
                     c.rep.comm.size() * sizeof(obs::CommEdge));
    if (need <= (unsigned __int128)materialize_budget) {
        for (const ProcClass &c : stats.classes) {
            if (c.rep.comm.empty())
                continue;
            if (c.isDefault)
                throw InternalError(
                    "comm fold: default symmetry class has traffic "
                    "but no explicit members");
            for (const ProcRange &r : c.members) {
                for (Int i = 0; i < r.count; ++i) {
                    obs::CommMatrix::Row row;
                    row.origin = r.memberAt(i, P);
                    Int t = euclidMod(checkedSub(row.origin,
                                                 c.rep.proc),
                                      P);
                    translateRow(c.rep.comm, t, P, row.edges);
                    out.rows.push_back(std::move(row));
                }
            }
        }
        std::sort(out.rows.begin(), out.rows.end(),
                  [](const obs::CommMatrix::Row &a,
                     const obs::CommMatrix::Row &b) {
                      return a.origin < b.origin;
                  });
        return out;
    }

    out.aggregated = true;
    Int dflt = -1;
    for (size_t ci = 0; ci < stats.classes.size(); ++ci) {
        const ProcClass &c = stats.classes[ci];
        out.classes.push_back(obs::CommMatrix::ClassInfo{
            c.rep.proc, c.multiplicity, c.isDefault});
        if (c.isDefault)
            dflt = Int(ci);
    }
    std::map<std::pair<uint64_t, uint64_t>, obs::CommMatrix::Cell> cells;
    auto cell_add = [&](size_t from, size_t to, const obs::CommEdge &e,
                        uint64_t members) {
        obs::CommMatrix::Cell &c = cells[{from, to}];
        c.from = from;
        c.to = to;
        c.remoteElements = detail::accumulateCounter(
            c.remoteElements, e.remoteElements, members);
        c.blockTransfers = detail::accumulateCounter(
            c.blockTransfers, e.blockTransfers, members);
        c.blockElements = detail::accumulateCounter(
            c.blockElements, e.blockElements, members);
    };
    for (size_t ai = 0; ai < stats.classes.size(); ++ai) {
        const ProcClass &A = stats.classes[ai];
        if (A.rep.comm.empty())
            continue;
        if (A.isDefault)
            throw InternalError(
                "comm fold: default symmetry class has traffic but no "
                "explicit members");
        for (const obs::CommEdge &e : A.rep.comm) {
            // Each member of A sends this edge's counts to one
            // translated owner; classify those owners per target
            // class in closed form. Whatever the explicit classes do
            // not claim belongs to the default class.
            uint64_t placed = 0;
            for (size_t bi = 0; bi < stats.classes.size(); ++bi) {
                const ProcClass &B = stats.classes[bi];
                if (B.isDefault)
                    continue;
                uint64_t members = 0;
                for (const ProcRange &ra : A.members)
                    for (const ProcRange &rb : B.members)
                        members += pairCount(ra, A.rep.proc, rb,
                                             e.owner, P);
                if (members) {
                    cell_add(ai, bi, e, members);
                    placed += members;
                }
            }
            if (placed > A.multiplicity)
                throw InternalError(
                    "comm fold: class ranges overlap (placed more "
                    "members than the class holds)");
            if (placed < A.multiplicity) {
                if (dflt < 0)
                    throw InternalError(
                        "comm fold lost traffic: owners outside every "
                        "symmetry class and no default class");
                cell_add(ai, size_t(dflt), e, A.multiplicity - placed);
            }
        }
    }
    out.cells.reserve(cells.size());
    for (auto &kv : cells)
        out.cells.push_back(kv.second);
    return out;
}

} // namespace anc::numa
