file(REMOVE_RECURSE
  "CMakeFiles/anc_ratmath.dir/diophantine.cc.o"
  "CMakeFiles/anc_ratmath.dir/diophantine.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/hnf.cc.o"
  "CMakeFiles/anc_ratmath.dir/hnf.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/int_util.cc.o"
  "CMakeFiles/anc_ratmath.dir/int_util.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/lattice.cc.o"
  "CMakeFiles/anc_ratmath.dir/lattice.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/linalg.cc.o"
  "CMakeFiles/anc_ratmath.dir/linalg.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/matrix.cc.o"
  "CMakeFiles/anc_ratmath.dir/matrix.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/rational.cc.o"
  "CMakeFiles/anc_ratmath.dir/rational.cc.o.d"
  "CMakeFiles/anc_ratmath.dir/smith.cc.o"
  "CMakeFiles/anc_ratmath.dir/smith.cc.o.d"
  "libanc_ratmath.a"
  "libanc_ratmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anc_ratmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
