# Empty dependencies file for hnf_property_test.
# This may be replaced when dependencies are built.
