file(REMOVE_RECURSE
  "CMakeFiles/access_matrix_test.dir/access_matrix_test.cc.o"
  "CMakeFiles/access_matrix_test.dir/access_matrix_test.cc.o.d"
  "access_matrix_test"
  "access_matrix_test.pdb"
  "access_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
