file(REMOVE_RECURSE
  "CMakeFiles/custom_transform.dir/custom_transform.cpp.o"
  "CMakeFiles/custom_transform.dir/custom_transform.cpp.o.d"
  "custom_transform"
  "custom_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
