/**
 * @file
 * Deterministic machine-fault model for the NUMA simulator.
 *
 * The simulator charges every remote access and block transfer as if
 * the Butterfly's switch network and nodes were perfect. This module
 * lets a run inject the failures real machines exhibit -- lost block
 * transfers, corrupted arrivals, transiently failing remote accesses,
 * and fail-stop processor deaths -- without giving up any of the
 * simulator's determinism guarantees.
 *
 * Like the compiler-side injector (ratmath/fault.*), the model is
 * counter-based, not random: faults are armed at logical event indices
 * ("the Nth block transfer", "every kth remote access"), and the
 * logical event streams are counted per simulated processor and per
 * compiled array reference. Because those streams are a pure function
 * of the program, the plan, and the bindings -- independent of host
 * thread count and of the strength-reduced fast path -- arming index N
 * always faults the same logical event, runs are bit-reproducible, and
 * a test can sweep N across every reachable fault site exactly once.
 *
 * Indices are 1-based. A recovered fault never changes which logical
 * events happen afterwards (recovery restores the fault-free state),
 * so injected faults only ever *add* recovery work; simulated time is
 * monotonically non-decreasing in the set of armed events.
 */

#ifndef ANC_NUMA_FAULT_MODEL_H
#define ANC_NUMA_FAULT_MODEL_H

#include <cstdint>
#include <string>

#include "ratmath/int_util.h"

namespace anc::numa {

/**
 * What to break during a simulated run. All fields off by default.
 * "at" fields arm one index of the per-processor, per-reference event
 * stream; "every" fields arm each multiple of k. Both may be set; an
 * index scheduled by both is faulted once.
 */
struct FaultOptions
{
    /** The Nth hoisted block transfer is lost in the network (the
     * sender retries under the RetryPolicy). 0 = never. */
    uint64_t dropTransferAt = 0;
    /** Every kth block transfer is lost. 0 = never. */
    uint64_t dropTransferEvery = 0;

    /** The Nth block transfer arrives with its payload corrupted; the
     * receiver's checksum check fails and the block is re-fetched. */
    uint64_t corruptTransferAt = 0;
    /** Every kth block transfer arrives corrupted. */
    uint64_t corruptTransferEvery = 0;

    /** The Nth element-wise remote access transiently fails. */
    uint64_t remoteFailAt = 0;
    /** Every kth element-wise remote access transiently fails. */
    uint64_t remoteFailEvery = 0;

    /**
     * Consecutive failed attempts injected at each armed drop/remote
     * event before the operation is allowed to succeed. When this
     * reaches RetryPolicy::maxAttempts, a block transfer is abandoned
     * (its elements fall back to element-wise remote access) and a
     * remote access escalates to a synchronous fetch.
     */
    int failuresPerEvent = 1;

    /** Processor to kill (fail-stop), or -1 for none. */
    Int killProc = -1;
    /** The victim dies after completing this many of its outer-slice
     * iterations (0 = before doing any work). Its unstarted slices are
     * redistributed to the surviving processors; if there are no
     * survivors, or the outer loop is not parallel, the victim reboots
     * and finishes its own slice (charged MachineParams::restartTime). */
    uint64_t killAfterSlices = 0;

    /** True when any fault is armed. */
    bool
    any() const
    {
        return anyMessage() || killProc >= 0;
    }

    /** True when any transfer/remote (message-level) fault is armed. */
    bool
    anyMessage() const
    {
        return dropTransferAt || dropTransferEvery || corruptTransferAt ||
               corruptTransferEvery || remoteFailAt || remoteFailEvery;
    }

    /** Throws UserError on out-of-range knobs. */
    void validate() const;

    /** Render in the --inject-machine-fault syntax (for reports). */
    std::string str() const;
};

/**
 * Parse the ancc --inject-machine-fault specification: a comma-
 * separated list of events,
 *
 *   drop-transfer@N      lose the Nth block transfer
 *   drop-transfer/K      lose every Kth block transfer
 *   corrupt-transfer@N   corrupt the Nth block transfer (checksum
 *   corrupt-transfer/K     mismatch, re-fetched)
 *   remote-fail@N        Nth remote access transiently fails
 *   remote-fail/K        every Kth remote access transiently fails
 *   kill:P@K             processor P dies after K outer slices
 *   x<F>                 inject F consecutive failures per armed event
 *
 * e.g. "drop-transfer/8,remote-fail@3,x2". Throws UserError on
 * malformed input.
 */
FaultOptions parseFaultSpec(const std::string &spec);

/** True when the 1-based event index i is armed by at/every. */
bool faultScheduledAt(uint64_t at, uint64_t every, uint64_t idx);

/**
 * Number of armed indices i with lo <= i <= hi (an index armed by both
 * the at and the every schedule counts once). The closed-form charging
 * paths use this to fault a whole run of events without enumerating
 * them.
 */
uint64_t faultsInRange(uint64_t at, uint64_t every, uint64_t lo,
                       uint64_t hi);

/**
 * Number of indices in [lo, hi] armed by BOTH schedules (at1/every1 and
 * at2/every2). Used to give drop faults precedence over corruption
 * faults scheduled at the same transfer.
 */
uint64_t faultsInRangeBoth(uint64_t at1, uint64_t every1, uint64_t at2,
                           uint64_t every2, uint64_t lo, uint64_t hi);

} // namespace anc::numa

#endif // ANC_NUMA_FAULT_MODEL_H
