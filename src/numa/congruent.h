/**
 * @file
 * Closed-form congruence counting over arithmetic progressions.
 *
 * The iteration-counting kernel of the simulator's wrapped-ownership
 * fast path (how many innermost iterations land on processor p?) and of
 * the communication-matrix class fold (how many members of one symmetry
 * class send to another?). Exact for any operand signs; cost is one
 * extended Euclid.
 */

#ifndef ANC_NUMA_CONGRUENT_H
#define ANC_NUMA_CONGRUENT_H

#include <cstdint>

#include "ratmath/int_util.h"

namespace anc::numa {

/**
 * Number of j in [0, count) with (a + j*delta) mod m == target. Also
 * reports the largest such j (jLast, meaningful when hits > 0).
 */
struct CongruentCount
{
    uint64_t hits = 0;
    uint64_t jLast = 0;
};

inline CongruentCount
countCongruent(Int a, Int delta, uint64_t count, Int m, Int target)
{
    CongruentCount out;
    Int need = euclidMod(checkedSub(target, a), m);
    Int d = euclidMod(delta, m);
    if (d == 0) {
        if (need == 0) {
            out.hits = count;
            out.jLast = count - 1;
        }
        return out;
    }
    ExtGcd eg = extGcd(d, m);
    if (need % eg.g != 0)
        return out;
    Int step = m / eg.g;
    // (d/g) * x == 1 (mod m/g), so j0 = (need/g) * x mod step.
    Int inv = euclidMod(eg.x, step);
    Int j0 = Int((Int128(need / eg.g) * Int128(inv)) % Int128(step));
    if (uint64_t(j0) >= count)
        return out;
    out.hits = (count - 1 - uint64_t(j0)) / uint64_t(step) + 1;
    out.jLast = uint64_t(j0) + (out.hits - 1) * uint64_t(step);
    return out;
}

} // namespace anc::numa

#endif // ANC_NUMA_CONGRUENT_H
