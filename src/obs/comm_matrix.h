/**
 * @file
 * Origin -> owner communication matrices.
 *
 * The simulator's scalar counters say *how much* traffic a processor
 * generated; the communication matrix says *where it went*: one cell
 * per (origin, owner) processor pair, holding the element-wise remote
 * accesses, completed block transfers, and block-moved elements charged
 * from origin against data owned by owner. This is the structure access
 * normalization reshapes -- the paper's local/remote ratios are the row
 * sums of this matrix -- and the scoring surface the ROADMAP's
 * autotuner will consume.
 *
 * Collection follows the PR 4 observability discipline: it is off by
 * default (SimOptions::commMatrix), the off switch costs the hot path
 * only never-taken branches, and the recorded cells are a pure function
 * of the per-processor walk, so the matrix is bit-identical across host
 * thread counts, fastInner/naive, and injected faults.
 *
 * Two representations mirror SimStats:
 *
 *   - direct runs fill one row per origin processor (empty rows
 *     omitted), each row a sparse owner-sorted edge list;
 *   - symmetry-aggregated runs fill class-pair cells: the traffic from
 *     every member of origin class A into every member of owner class
 *     B, computed from one representative row per class. The
 *     translation-merge conditions (numa/symmetry.h) make member rows
 *     exact translations of the representative's, so the fold is exact,
 *     and storage is O(#classes^2 worst case, #edges in practice) even
 *     at P = 2^20. The builder (numa::buildCommMatrix) expands class
 *     rows back to per-processor rows when the expansion fits a byte
 *     budget, translating owners by the member offset, so small-P
 *     exports are byte-identical across symmetry=off|auto|force.
 *
 * Conservation invariants (asserted by tests/numa/comm_matrix_test.cc):
 * summed over a row, remoteElements == ProcStats::remoteAccesses,
 * blockTransfers == ProcStats::blockTransfers and blockElements ==
 * ProcStats::blockElements of the same origin; grand totals match the
 * SimStats totals.
 */

#ifndef ANC_OBS_COMM_MATRIX_H
#define ANC_OBS_COMM_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

namespace anc::obs {

/** Traffic from one origin processor to one owner processor. */
struct CommEdge
{
    int64_t owner = 0;
    uint64_t remoteElements = 0; //!< element-wise remote accesses
    uint64_t blockTransfers = 0; //!< completed hoisted block messages
    uint64_t blockElements = 0;  //!< elements moved by those blocks

    bool
    any() const
    {
        return remoteElements || blockTransfers || blockElements;
    }
};

/**
 * A whole-machine communication matrix in one of the two
 * representations described in the file comment.
 */
struct CommMatrix
{
    /** Default byte budget for materialize(). */
    static constexpr uint64_t kDefaultMaterializeBudget =
        uint64_t(256) << 20;

    int64_t processors = 1;
    /** True when cells/classes are authoritative (class-pair form). */
    bool aggregated = false;

    /** One origin's outgoing traffic (direct form; empty rows
     * omitted, rows sorted by origin, edges sorted by owner). */
    struct Row
    {
        int64_t origin = 0;
        std::vector<CommEdge> edges;
    };
    std::vector<Row> rows;

    /** Class identity mirrored from SimStats::classes. */
    struct ClassInfo
    {
        int64_t rep = 0;
        uint64_t multiplicity = 1;
        bool isDefault = false;
    };
    std::vector<ClassInfo> classes;

    /** Total traffic from every member of class `from` into every
     * member of class `to` (multiplicities already applied, overflow
     * checked at build time). Sorted by (from, to). */
    struct Cell
    {
        uint64_t from = 0;
        uint64_t to = 0;
        uint64_t remoteElements = 0;
        uint64_t blockTransfers = 0;
        uint64_t blockElements = 0;
    };
    std::vector<Cell> cells;

    bool
    empty() const
    {
        return rows.empty() && cells.empty();
    }

    /** Checked grand totals over whichever representation is
     * authoritative; throw UserError on uint64 overflow. */
    uint64_t totalRemoteElements() const;
    uint64_t totalBlockTransfers() const;
    uint64_t totalBlockElements() const;

    /** Row sums of the direct representation (CommEdge::owner reused
     * as the origin id; empty for aggregated matrices, whose per-origin
     * sums live in the representative rows folded into cells). */
    std::vector<CommEdge> rowTotals() const;

    /**
     * Stable JSON object: {"processors", "aggregated", then "rows" or
     * "classes"+"cells"}. Fixed key order, sorted rows/edges/cells, no
     * whitespace variance -- byte-comparable across runs.
     */
    std::string renderJson() const;

    /**
     * Terminal heatmap: origins down, owners across, one glyph per
     * cell scaled logarithmically by elements moved (remote + block).
     * Matrices wider than max_cells are bucketed by summation so the
     * render stays readable at any P. Aggregated matrices render the
     * class-pair grid with class sizes in the legend.
     */
    std::string renderHeatmap(size_t max_cells = 48) const;
};

} // namespace anc::obs

#endif // ANC_OBS_COMM_MATRIX_H
