file(REMOVE_RECURSE
  "CMakeFiles/anc_dsl.dir/lexer.cc.o"
  "CMakeFiles/anc_dsl.dir/lexer.cc.o.d"
  "CMakeFiles/anc_dsl.dir/parser.cc.o"
  "CMakeFiles/anc_dsl.dir/parser.cc.o.d"
  "CMakeFiles/anc_dsl.dir/printer.cc.o"
  "CMakeFiles/anc_dsl.dir/printer.cc.o.d"
  "libanc_dsl.a"
  "libanc_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anc_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
