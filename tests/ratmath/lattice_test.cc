/**
 * @file
 * Unit and property tests for integer lattices.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "ratmath/diophantine.h"
#include "ratmath/lattice.h"
#include "ratmath/linalg.h"
#include "test_util.h"

namespace anc {
namespace {

using testutil::randomInvertibleMatrix;
using testutil::randomUnimodularMatrix;

TEST(LatticeTest, IdentityIsAllOfZn)
{
    Lattice l(IntMatrix::identity(3));
    EXPECT_EQ(l.index(), 1);
    for (size_t k = 0; k < 3; ++k)
        EXPECT_EQ(l.stride(k), 1);
    EXPECT_TRUE(l.contains({5, -7, 0}));
}

TEST(LatticeTest, ScalingLattice)
{
    // The loop-scaling example of Section 3: u = 2i, lattice 2Z.
    Lattice l(IntMatrix{{2}});
    EXPECT_EQ(l.stride(0), 2);
    EXPECT_EQ(l.index(), 2);
    EXPECT_TRUE(l.contains({4}));
    EXPECT_FALSE(l.contains({5}));
}

TEST(LatticeTest, Section3Transformation)
{
    // T = [[2,4],[1,5]], det 6. The image lattice contains exactly the
    // points (2i+4j, i+5j).
    IntMatrix t{{2, 4}, {1, 5}};
    Lattice l(t);
    EXPECT_EQ(l.index(), 6);
    for (Int i = -3; i <= 3; ++i)
        for (Int j = -3; j <= 3; ++j)
            EXPECT_TRUE(l.contains({2 * i + 4 * j, i + 5 * j}));
    // Points that are not images: brute-force cross check on a window.
    std::set<std::pair<Int, Int>> image;
    for (Int i = -30; i <= 30; ++i)
        for (Int j = -30; j <= 30; ++j)
            image.insert({2 * i + 4 * j, i + 5 * j});
    for (Int u = -8; u <= 8; ++u)
        for (Int v = -8; v <= 8; ++v)
            EXPECT_EQ(l.contains({u, v}), image.count({u, v}) == 1)
                << u << "," << v;
}

TEST(LatticeTest, SingularGeneratorsThrow)
{
    EXPECT_THROW(Lattice(IntMatrix{{1, 2}, {2, 4}}), MathError);
    EXPECT_THROW(Lattice(IntMatrix(2, 3)), InternalError);
}

TEST(LatticeTest, UnimodularGeneratorsGiveZn)
{
    std::mt19937 rng(9);
    for (int trial = 0; trial < 30; ++trial) {
        IntMatrix u = randomUnimodularMatrix(rng, 3);
        Lattice l(u);
        EXPECT_EQ(l.index(), 1);
        for (size_t k = 0; k < 3; ++k)
            EXPECT_EQ(l.stride(k), 1);
    }
}

TEST(LatticeTest, MembershipMatchesDiophantine)
{
    // u in L(T) iff T x = u is solvable over the integers.
    std::mt19937 rng(123);
    for (int trial = 0; trial < 30; ++trial) {
        size_t n = 2 + trial % 3;
        IntMatrix t = randomInvertibleMatrix(rng, n, -3, 3);
        Lattice l(t);
        std::uniform_int_distribution<Int> pt(-6, 6);
        for (int q = 0; q < 20; ++q) {
            IntVec u(n);
            for (size_t i = 0; i < n; ++i)
                u[i] = pt(rng);
            bool member = l.contains(u);
            bool solvable = solveDiophantine(t, u).has_value();
            EXPECT_EQ(member, solvable);
        }
        // Every generated point is a member.
        IntVec x(n);
        for (size_t i = 0; i < n; ++i)
            x[i] = pt(rng);
        EXPECT_TRUE(l.contains(t.apply(x)));
    }
}

TEST(LatticeTest, AnchorAndSolveYRoundTrip)
{
    std::mt19937 rng(321);
    for (int trial = 0; trial < 30; ++trial) {
        size_t n = 2 + trial % 3;
        IntMatrix t = randomInvertibleMatrix(rng, n, -3, 3);
        Lattice l(t);
        std::uniform_int_distribution<Int> pt(-5, 5);
        IntVec x(n);
        for (size_t i = 0; i < n; ++i)
            x[i] = pt(rng);
        IntVec u = t.apply(x);
        // Forward substitution level by level must reconstruct a valid
        // y with H y == u.
        IntVec y;
        for (size_t k = 0; k < n; ++k) {
            Int a = l.anchor(k, y);
            EXPECT_EQ(euclidMod(u[k] - a, l.stride(k)), 0);
            y.push_back(l.solveY(k, u[k], y));
        }
        EXPECT_EQ(l.hnf().apply(y), u);
    }
}

TEST(LatticeTest, SolveYRejectsOffLatticePoints)
{
    Lattice l(IntMatrix{{2}});
    EXPECT_THROW(l.solveY(0, 3, {}), InternalError);
    EXPECT_EQ(l.solveY(0, 6, {}), 3);
}

TEST(LatticeTest, StrideCountsLatticePointsOnAxis)
{
    // In coordinate k with outer coordinates fixed to lattice-compatible
    // values, consecutive lattice points differ by exactly stride(k).
    IntMatrix t{{2, 4}, {1, 5}};
    Lattice l(t);
    // Enumerate all lattice points with u0 = 0: they are (0, v) where
    // v anchored by y0 = 0 steps by stride(1).
    IntVec y0;
    Int a0 = l.anchor(0, y0);
    EXPECT_EQ(euclidMod(0 - a0, l.stride(0)), 0);
    IntVec y{l.solveY(0, 0, {})};
    Int anchor1 = l.anchor(1, y);
    std::set<Int> vs;
    for (Int i = -40; i <= 40; ++i)
        for (Int j = -40; j <= 40; ++j)
            if (2 * i + 4 * j == 0) {
                Int v = i + 5 * j;
                if (v >= -10 && v <= 10)
                    vs.insert(v);
            }
    for (Int v = -10; v <= 10; ++v) {
        bool in_lattice = euclidMod(v - anchor1, l.stride(1)) == 0;
        EXPECT_EQ(in_lattice, vs.count(v) == 1) << v;
    }
}

} // namespace
} // namespace anc
