/**
 * @file
 * Unit tests for loop nests, programs, the builder, and validation.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/gallery.h"

namespace anc::ir {
namespace {

TEST(BuilderTest, GemmShape)
{
    Program p = gallery::gemm();
    EXPECT_EQ(p.nest.depth(), 3u);
    EXPECT_EQ(p.params.size(), 1u);
    EXPECT_EQ(p.arrays.size(), 3u);
    EXPECT_EQ(p.nest.body().size(), 1u);
    EXPECT_EQ(p.arrayIndex("C"), 0u);
    EXPECT_EQ(p.arrayIndex("B"), 2u);
    EXPECT_EQ(p.paramIndex("N"), 0u);
    EXPECT_THROW(p.arrayIndex("nope"), UserError);
    EXPECT_THROW(p.paramIndex("nope"), UserError);
    EXPECT_THROW(p.scalarIndex("nope"), UserError);
}

TEST(BuilderTest, Syr2kBoundsAndScalars)
{
    Program p = gallery::syr2kBanded();
    EXPECT_EQ(p.nest.depth(), 3u);
    EXPECT_EQ(p.scalars.size(), 2u);
    EXPECT_EQ(p.scalarIndex("beta"), 1u);
    // The k loop has 3 lower and 3 upper bounds (max/min in the paper).
    EXPECT_EQ(p.nest.loops()[2].lower.size(), 3u);
    EXPECT_EQ(p.nest.loops()[2].upper.size(), 3u);
}

TEST(BuilderTest, ExtentEvaluation)
{
    Program p = gallery::syr2kBanded();
    // Cb is N x (2b-1).
    IntVec ext = p.arrays[0].evalExtents({40, 6});
    EXPECT_EQ(ext, (IntVec{40, 11}));
}

TEST(ConstraintsTest, GemmConstraintCount)
{
    Program p = gallery::gemm();
    auto cons = p.nest.constraints(p.params.size());
    // 3 loops x (1 lower + 1 upper).
    EXPECT_EQ(cons.size(), 6u);
    // First constraint: i - 0 >= 0.
    EXPECT_EQ(cons[0].varCoeffs[0], Rational(1));
    EXPECT_EQ(cons[0].constant, Rational(0));
    // Second: (N - 1) - i >= 0.
    EXPECT_EQ(cons[1].varCoeffs[0], Rational(-1));
    EXPECT_EQ(cons[1].paramCoeffs[0], Rational(1));
    EXPECT_EQ(cons[1].constant, Rational(-1));
}

TEST(ConstraintsTest, RoundTripThroughAffine)
{
    Program p = gallery::syr2kBanded();
    for (const LinearConstraint &c : p.nest.constraints(2)) {
        LinearConstraint rt = LinearConstraint::fromAffine(c.toAffine());
        EXPECT_EQ(rt, c);
    }
}

TEST(ValidationTest, GalleryProgramsValidate)
{
    EXPECT_NO_THROW(gallery::figure1().validate());
    EXPECT_NO_THROW(gallery::gemm().validate());
    EXPECT_NO_THROW(gallery::syr2kBanded().validate());
    EXPECT_NO_THROW(gallery::section3Example().validate());
    EXPECT_NO_THROW(gallery::section5Example().validate());
    EXPECT_NO_THROW(gallery::scalingExample().validate());
}

TEST(ValidationTest, BoundReferencingInnerVariableRejected)
{
    ProgramBuilder b(2);
    b.array("A", {b.cst(10)});
    b.loop("i", b.cst(0), b.var(1)); // upper bound uses inner j
    b.loop("j", b.cst(0), b.cst(5));
    b.assign(b.ref(0, {b.var(0)}), Expr::number_(1.0));
    EXPECT_THROW(b.build(), UserError);
}

TEST(ValidationTest, SelfReferencingBoundRejected)
{
    ProgramBuilder b(1);
    b.array("A", {b.cst(10)});
    b.loop("i", b.var(0), b.cst(5));
    b.assign(b.ref(0, {b.var(0)}), Expr::number_(1.0));
    EXPECT_THROW(b.build(), UserError);
}

TEST(ValidationTest, WrongSubscriptCountRejected)
{
    ProgramBuilder b(1);
    b.array("A", {b.cst(10), b.cst(10)});
    b.loop("i", b.cst(0), b.cst(5));
    b.assign(b.ref(0, {b.var(0)}), Expr::number_(1.0));
    EXPECT_THROW(b.build(), UserError);
}

TEST(ValidationTest, BadDistributionDimensionRejected)
{
    ProgramBuilder b(1);
    b.array("A", {b.cst(10)}, DistributionSpec::wrapped(3));
    b.loop("i", b.cst(0), b.cst(5));
    b.assign(b.ref(0, {b.var(0)}), Expr::number_(1.0));
    EXPECT_THROW(b.build(), UserError);
}

TEST(DistributionSpecTest, Factories)
{
    auto w = DistributionSpec::wrapped(1);
    EXPECT_EQ(w.kind, DistKind::Wrapped);
    EXPECT_TRUE(w.isDistributionDim(1));
    EXPECT_FALSE(w.isDistributionDim(0));

    auto b2 = DistributionSpec::block2d(0, 1);
    EXPECT_EQ(b2.dims.size(), 2u);
    EXPECT_TRUE(b2.isDistributionDim(0));
    EXPECT_TRUE(b2.isDistributionDim(1));

    auto r = DistributionSpec::replicated();
    EXPECT_TRUE(r.dims.empty());
}

TEST(StatementTest, FlopCountAndRefVisit)
{
    Program p = gallery::gemm();
    const Statement &s = p.nest.body()[0];
    // C = C + A*B: one + and one *.
    EXPECT_EQ(s.flopCount(), 2u);
    size_t writes = 0, reads = 0;
    s.forEachRef([&](const ArrayRef &, bool is_write) {
        (is_write ? writes : reads) += 1;
    });
    EXPECT_EQ(writes, 1u);
    EXPECT_EQ(reads, 3u);
}

TEST(StatementTest, Syr2kFlopCount)
{
    Program p = gallery::syr2kBanded();
    // Cb + alpha*Ab*Bb + beta*Ab*Bb: 2 adds + 4 muls.
    EXPECT_EQ(p.nest.body()[0].flopCount(), 6u);
}

} // namespace
} // namespace anc::ir
