#include "xform/transform.h"

#include <sstream>

#include "ir/printer.h"
#include "ratmath/linalg.h"

namespace anc::xform {

using ir::AffineExpr;

TransformedNest::TransformedNest(IntMatrix t, RatMatrix t_inv,
                                 Lattice lattice,
                                 std::vector<TransformedLoop> loops,
                                 std::vector<ir::Statement> body,
                                 std::vector<AffineExpr> param_conditions)
    : t_(std::move(t)), tInv_(std::move(t_inv)), lattice_(std::move(lattice)),
      loops_(std::move(loops)), body_(std::move(body)),
      paramConditions_(std::move(param_conditions))
{}

Int
TransformedNest::lowerAt(size_t k, const IntVec &u,
                         const IntVec &params) const
{
    bool first = true;
    Int best = 0;
    for (const AffineExpr &e : loops_[k].lower) {
        Int v = e.evaluate(u, params).ceil();
        if (first || v > best)
            best = v;
        first = false;
    }
    if (first)
        throw InternalError("transformed loop without lower bounds");
    return best;
}

Int
TransformedNest::upperAt(size_t k, const IntVec &u,
                         const IntVec &params) const
{
    bool first = true;
    Int best = 0;
    for (const AffineExpr &e : loops_[k].upper) {
        Int v = e.evaluate(u, params).floor();
        if (first || v < best)
            best = v;
        first = false;
    }
    if (first)
        throw InternalError("transformed loop without upper bounds");
    return best;
}

Int
TransformedNest::startAt(size_t k, Int lower, const IntVec &y_prefix) const
{
    Int anchor = lattice_.anchor(k, y_prefix);
    Int s = lattice_.stride(k);
    return checkedAdd(lower, euclidMod(checkedSub(anchor, lower), s));
}

IntVec
TransformedNest::oldIteration(const IntVec &u) const
{
    RatVec x = tInv_.apply(toRational(u));
    IntVec out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = x[i].asInteger();
    return out;
}

uint64_t
TransformedNest::forEachIteration(
    const IntVec &params, const std::function<void(const IntVec &)> &fn) const
{
    size_t n = depth();
    IntVec u(n, 0);
    IntVec y;
    y.reserve(n);

    std::function<uint64_t(size_t)> walk = [&](size_t k) -> uint64_t {
        if (k == n) {
            fn(u);
            return 1;
        }
        Int lo = lowerAt(k, u, params);
        Int hi = upperAt(k, u, params);
        if (lo > hi)
            return 0;
        Int s = lattice_.stride(k);
        Int start = startAt(k, lo, y);
        uint64_t count = 0;
        for (Int v = start; v <= hi; v += s) {
            u[k] = v;
            y.push_back(lattice_.solveY(k, v, y));
            count += walk(k + 1);
            y.pop_back();
        }
        u[k] = 0;
        return count;
    };
    return walk(0);
}

uint64_t
TransformedNest::run(const ir::Bindings &binds, ir::ArrayStorage &store,
                     const ir::TraceFn &trace) const
{
    return forEachIteration(binds.paramValues, [&](const IntVec &u) {
        for (const ir::Statement &s : body_)
            ir::execStatement(s, u, binds, store, trace);
    });
}

std::string
newLoopVarName(size_t k)
{
    static const char *kNames[] = {"u", "v", "w", "z"};
    if (k < 4)
        return kNames[k];
    return "u" + std::to_string(k);
}

TransformedNest
applyTransform(const ir::Program &prog, const IntMatrix &t)
{
    size_t n = prog.nest.depth();
    size_t p = prog.params.size();
    if (!t.isSquare() || t.rows() != n)
        throw InternalError("transformation has wrong shape");
    auto t_inv = tryInverse(toRational(t));
    if (!t_inv)
        throw MathError("transformation matrix is singular");

    // Constraints over the new space: substitute x = T^{-1} u.
    std::vector<ir::LinearConstraint> cons;
    for (const ir::LinearConstraint &c : prog.nest.constraints(p)) {
        AffineExpr e = c.toAffine().composeWithVarMap(*t_inv);
        cons.push_back(ir::LinearConstraint::fromAffine(e));
    }
    FMBounds fm = fourierMotzkin(cons, n, p);

    Lattice lattice(t);

    std::vector<TransformedLoop> loops(n);
    for (size_t k = 0; k < n; ++k) {
        loops[k].var = newLoopVarName(k);
        loops[k].lower = fm.lower[k];
        loops[k].upper = fm.upper[k];
        loops[k].stride = lattice.stride(k);
    }

    // Rewrite the body through the inverse map.
    std::vector<ir::Statement> body = prog.nest.body();
    for (ir::Statement &s : body) {
        s.forEachAffineMut(
            [&](AffineExpr &e) { e = e.composeWithVarMap(*t_inv); });
    }

    return TransformedNest(t, *t_inv, std::move(lattice), std::move(loops),
                           std::move(body), fm.paramConditions);
}

std::string
printTransformedNest(const TransformedNest &nest, const ir::Program &prog)
{
    ir::NameTable names;
    for (const TransformedLoop &l : nest.loops())
        names.vars.push_back(l.var);
    names.params = prog.params;

    auto bound_list = [&](const std::vector<AffineExpr> &bounds,
                          const char *comb, const char *round) {
        std::ostringstream os;
        bool need_round = false;
        for (const AffineExpr &b : bounds)
            if (!b.hasIntegerCoeffs())
                need_round = true;
        if (bounds.size() > 1)
            os << comb << "(";
        for (size_t i = 0; i < bounds.size(); ++i) {
            if (i)
                os << ", ";
            if (need_round && !bounds[i].hasIntegerCoeffs())
                os << round << "(" << bounds[i].str(names) << ")";
            else
                os << bounds[i].str(names);
        }
        if (bounds.size() > 1)
            os << ")";
        return os.str();
    };

    std::ostringstream os;
    std::string indent;
    for (size_t k = 0; k < nest.depth(); ++k) {
        const TransformedLoop &l = nest.loops()[k];
        os << indent << "for " << l.var << " = "
           << bound_list(l.lower, "max", "ceil") << ", "
           << bound_list(l.upper, "min", "floor");
        if (l.stride != 1) {
            os << " step " << l.stride;
            // Report the congruence class when it is not simply 0.
            const IntMatrix &h = nest.lattice().hnf();
            bool anchored = false;
            for (size_t j = 0; j < k; ++j)
                if (h(k, j) % l.stride != 0)
                    anchored = true;
            if (anchored)
                os << " (aligned to lattice anchor)";
        }
        os << "\n";
        indent += "  ";
    }
    for (const ir::Statement &s : nest.body())
        os << indent << printStatement(s, prog, names) << "\n";
    return os.str();
}

} // namespace anc::xform
