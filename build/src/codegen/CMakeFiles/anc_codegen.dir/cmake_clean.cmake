file(REMOVE_RECURSE
  "CMakeFiles/anc_codegen.dir/emit_c.cc.o"
  "CMakeFiles/anc_codegen.dir/emit_c.cc.o.d"
  "CMakeFiles/anc_codegen.dir/planner.cc.o"
  "CMakeFiles/anc_codegen.dir/planner.cc.o.d"
  "CMakeFiles/anc_codegen.dir/strength.cc.o"
  "CMakeFiles/anc_codegen.dir/strength.cc.o.d"
  "libanc_codegen.a"
  "libanc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
