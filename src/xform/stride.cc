#include "xform/stride.h"

namespace anc::xform {

namespace {

std::vector<RefStride>
analyze(const std::vector<ir::Statement> &body, size_t depth, Int step)
{
    std::vector<RefStride> out;
    if (depth == 0)
        return out;
    size_t inner = depth - 1;
    for (size_t si = 0; si < body.size(); ++si) {
        auto visit = [&](const ir::ArrayRef &r, bool is_write) {
            RefStride rs;
            rs.stmt = si;
            rs.arrayId = r.arrayId;
            rs.isWrite = is_write;
            for (const ir::AffineExpr &e : r.subscripts)
                rs.strides.push_back(e.varCoeff(inner) * Rational(step));
            out.push_back(std::move(rs));
        };
        body[si].forEachRef(visit);
    }
    return out;
}

} // namespace

std::vector<RefStride>
analyzeInnerStrides(const ir::LoopNest &nest)
{
    return analyze(nest.body(), nest.depth(), 1);
}

std::vector<RefStride>
analyzeInnerStrides(const TransformedNest &nest)
{
    // Guard before touching loops().back(): a zero-depth nest has no
    // innermost loop (and no references that could stride along it).
    if (nest.depth() == 0)
        return {};
    return analyze(nest.body(), nest.depth(),
                   nest.loops().back().stride);
}

} // namespace anc::xform
