#include "xform/classic.h"

#include "ratmath/error.h"

namespace anc::xform {

IntMatrix
interchange(size_t n, size_t a, size_t b)
{
    IntMatrix m = IntMatrix::identity(n);
    m.swapRows(a, b);
    return m;
}

IntMatrix
permutation(const std::vector<size_t> &perm)
{
    size_t n = perm.size();
    IntMatrix m(n, n);
    std::vector<bool> used(n, false);
    for (size_t k = 0; k < n; ++k) {
        if (perm[k] >= n || used[perm[k]])
            throw InternalError("invalid permutation");
        used[perm[k]] = true;
        m(k, perm[k]) = 1;
    }
    return m;
}

IntMatrix
reversal(size_t n, size_t k)
{
    IntMatrix m = IntMatrix::identity(n);
    m(k, k) = -1;
    return m;
}

IntMatrix
skew(size_t n, size_t target, size_t source, Int factor)
{
    if (target == source)
        throw InternalError("skew target equals source");
    IntMatrix m = IntMatrix::identity(n);
    m(target, source) = factor;
    return m;
}

IntMatrix
scaling(size_t n, size_t k, Int factor)
{
    if (factor <= 0)
        throw InternalError("scaling factor must be positive");
    IntMatrix m = IntMatrix::identity(n);
    m(k, k) = factor;
    return m;
}

} // namespace anc::xform
