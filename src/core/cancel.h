/**
 * @file
 * Cooperative cancellation with a deterministic step budget.
 *
 * A long-running compilation service cannot afford an unbounded
 * request: one pathological nest would stall the whole batch. Wall
 * clocks make flaky budgets (a loaded CI machine would shed requests a
 * quiet one serves), so the deadline is counted in *steps*: the
 * compiler spends one step at every pipeline phase boundary it crosses
 * (plus explicit charges like retry backoff), and a request with the
 * same program, options, and fault schedule always spends exactly the
 * same number of steps -- deadline verdicts are reproducible
 * bit-for-bit at any host thread count.
 *
 * DeadlineExceeded deliberately does NOT derive from anc::Error: the
 * resilient compiler's recovery boundaries catch `const Error &` to
 * degrade gracefully, and a deadline must cut through all of them --
 * degrading to a cheaper tier is more work, which is exactly what an
 * expired budget cannot pay for.
 */

#ifndef ANC_CORE_CANCEL_H
#define ANC_CORE_CANCEL_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace anc::core {

/** Thrown when a CancelToken's step budget is exhausted. Not an
 * anc::Error: it must escape every recovery boundary. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    DeadlineExceeded(std::uint64_t limit, std::uint64_t observed)
        : std::runtime_error(
              "deadline exceeded: step budget limit " +
              std::to_string(limit) + ", observed " +
              std::to_string(observed) + " steps"),
          limit(limit), observed(observed)
    {
    }

    std::uint64_t limit;    //!< the configured step budget
    std::uint64_t observed; //!< steps spent when the budget tripped
};

/**
 * A cooperative deadline: a step budget spent at phase boundaries.
 * budget = 0 means unlimited (steps are still counted, so callers can
 * report the cost of a request that was not deadline-bound).
 */
class CancelToken
{
  public:
    explicit CancelToken(std::uint64_t budget = 0) : budget_(budget) {}

    /** Charge `n` steps; throws DeadlineExceeded when the budget is
     * exceeded. The over-budget charge is still recorded, so the
     * exception reports the observed total. */
    void
    spend(std::uint64_t n = 1)
    {
        steps_ += n;
        if (budget_ != 0 && steps_ > budget_)
            throw DeadlineExceeded(budget_, steps_);
    }

    std::uint64_t steps() const { return steps_; }
    std::uint64_t budget() const { return budget_; }
    bool limited() const { return budget_ != 0; }

    /** Steps left before the next spend() throws (max when unlimited). */
    std::uint64_t
    remaining() const
    {
        if (budget_ == 0)
            return ~std::uint64_t(0);
        return steps_ >= budget_ ? 0 : budget_ - steps_;
    }

  private:
    std::uint64_t budget_;
    std::uint64_t steps_ = 0;
};

} // namespace anc::core

#endif // ANC_CORE_CANCEL_H
