/**
 * @file
 * Unit tests for the classic transformation matrices.
 */

#include <gtest/gtest.h>

#include "ratmath/linalg.h"
#include "xform/classic.h"

namespace anc::xform {
namespace {

TEST(ClassicTest, Interchange)
{
    EXPECT_EQ(interchange(3, 0, 2),
              (IntMatrix{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}}));
    EXPECT_TRUE(isUnimodular(interchange(4, 1, 3)));
}

TEST(ClassicTest, Permutation)
{
    EXPECT_EQ(permutation({1, 2, 0}),
              (IntMatrix{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}));
    EXPECT_THROW(permutation({0, 0, 1}), InternalError);
    EXPECT_THROW(permutation({0, 3, 1}), InternalError);
}

TEST(ClassicTest, Reversal)
{
    IntMatrix r = reversal(2, 1);
    EXPECT_EQ(r, (IntMatrix{{1, 0}, {0, -1}}));
    EXPECT_TRUE(isUnimodular(r));
}

TEST(ClassicTest, Skew)
{
    IntMatrix s = skew(2, 1, 0, 3);
    EXPECT_EQ(s, (IntMatrix{{1, 0}, {3, 1}}));
    EXPECT_TRUE(isUnimodular(s));
    EXPECT_THROW(skew(2, 1, 1, 3), InternalError);
}

TEST(ClassicTest, Scaling)
{
    IntMatrix s = scaling(2, 0, 4);
    EXPECT_EQ(s, (IntMatrix{{4, 0}, {0, 1}}));
    EXPECT_FALSE(isUnimodular(s));
    EXPECT_EQ(determinant(s), 4);
    EXPECT_THROW(scaling(2, 0, 0), InternalError);
    EXPECT_THROW(scaling(2, 0, -2), InternalError);
}

TEST(ClassicTest, CompositionsStayInvertible)
{
    IntMatrix t = interchange(3, 0, 1) * skew(3, 2, 0, 2) *
                  scaling(3, 1, 3) * reversal(3, 2);
    EXPECT_TRUE(isInvertible(t));
    EXPECT_NE(determinant(t), 0);
    // |det| = product of scaling factors = 3.
    Int d = determinant(t);
    EXPECT_EQ(d < 0 ? -d : d, 3);
}

} // namespace
} // namespace anc::xform
