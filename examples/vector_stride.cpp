/**
 * @file
 * The Section 9 side application: access normalization for vector
 * machines. On a CRAY-style machine vector loads need constant stride,
 * and even scatter/gather machines prefer it. Normalizing the access
 * makes the innermost-loop subscript equal to the loop variable, i.e.
 * stride 1.
 *
 * The example kernel reads A[i+j, 2j]: in the source nest the innermost
 * subscripts change by (+1, +2) per j step -- a stride-2 second
 * dimension and a diagonal first dimension. After normalization both
 * subscripts are loop variables and the innermost stride is constant 1
 * in the lexically last dimension.
 *
 *   $ ./examples/vector_stride
 */

#include <cstdio>

#include "ir/builder.h"
#include "ir/printer.h"
#include "xform/normalize.h"

namespace {

using namespace anc;

/** Stride of each subscript of the first rhs ref along the innermost
 * loop of the (possibly transformed) nest. */
std::vector<Rational>
innerStrides(const std::vector<ir::AffineExpr> &subs, size_t depth)
{
    std::vector<Rational> out;
    for (const ir::AffineExpr &e : subs)
        out.push_back(e.varCoeff(depth - 1));
    return out;
}

} // namespace

int
main()
{
    ir::ProgramBuilder b(2);
    size_t pn = b.param("N");
    auto N = b.par(pn);
    size_t arr_s = b.array("S", {N.scaled(Rational(2))});
    size_t arr_a = b.array(
        "A", {N.scaled(Rational(2)), N.scaled(Rational(2))});
    b.loop("i", b.cst(0), N - b.cst(1));
    b.loop("j", b.cst(0), N - b.cst(1));
    auto vi = b.var(0), vj = b.var(1);
    // S[i+j] = S[i+j] + A[i+j, 2j]
    b.assign(b.ref(arr_s, {vi + vj}),
             ir::Expr::binary(
                 '+', ir::Expr::arrayRead(b.ref(arr_s, {vi + vj})),
                 ir::Expr::arrayRead(
                     b.ref(arr_a, {vi + vj, vj.scaled(Rational(2))}))));
    ir::Program p = b.build();

    std::printf("--- source nest ---\n%s\n",
                ir::printNest(p.nest, p).c_str());
    {
        const auto &subs = p.nest.body()[0].rhs.kids[1].ref.subscripts;
        auto s = innerStrides(subs, 2);
        std::printf("A subscript strides along innermost loop: (%s, %s)\n"
                    "  -> gather/scatter needed on a vector machine\n\n",
                    s[0].str().c_str(), s[1].str().c_str());
    }

    xform::NormalizeResult r = xform::accessNormalize(p);
    std::printf("transformation T:\n%s", r.transform.str().c_str());
    std::printf("\n--- normalized nest ---\n%s\n",
                xform::printTransformedNest(*r.nest, p).c_str());
    {
        const auto &subs = r.nest->body()[0].rhs.kids[1].ref.subscripts;
        auto s = innerStrides(subs, 2);
        std::printf("A subscript strides along innermost loop: (%s, %s)\n",
                    s[0].str().c_str(), s[1].str().c_str());
        bool constant_stride = true;
        // The vectorizable pattern: at most one subscript varies with
        // the vector loop, with integral stride.
        for (const Rational &x : s)
            if (!x.isInteger())
                constant_stride = false;
        std::printf("  -> %s\n",
                    constant_stride
                        ? "constant-stride vector access (normalized)"
                        : "still needs gather/scatter");
    }

    // Both versions compute the same sums.
    IntVec params{12};
    ir::ArrayStorage seq(p, params), par(p, params);
    seq.fillDeterministic(5);
    par.fillDeterministic(5);
    ir::run(p, {params, {}}, seq);
    r.nest->run({params, {}}, par);
    bool equal = seq.data(0) == par.data(0);
    std::printf("\nnormalized execution %s the original\n",
                equal ? "MATCHES" : "DIFFERS FROM");
    return equal ? 0 : 1;
}
