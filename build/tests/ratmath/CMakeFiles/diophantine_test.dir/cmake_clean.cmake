file(REMOVE_RECURSE
  "CMakeFiles/diophantine_test.dir/diophantine_test.cc.o"
  "CMakeFiles/diophantine_test.dir/diophantine_test.cc.o.d"
  "diophantine_test"
  "diophantine_test.pdb"
  "diophantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diophantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
