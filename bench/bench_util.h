/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench binary prints its paper table/figure data to stdout first
 * (the reproduction artifact), then runs google-benchmark timings of
 * the underlying machinery, and finally writes a machine-readable
 * BENCH_<name>.json summary (wall time, simulated time, processor
 * count, flags) into the working directory. Environment knobs:
 *
 *   ANC_BENCH_N      problem size N       (default: binary-specific)
 *   ANC_BENCH_B      band width b         (default: binary-specific)
 *   ANC_BENCH_FULL   =1: paper-scale N=400 runs (slow, exact sizes)
 *
 * Simulations run the full processor set (no sampling): the simulator's
 * host-parallel, strength-reduced fast path makes exact full-P runs
 * cheap enough for the harness.
 */

#ifndef ANC_BENCH_BENCH_UTIL_H
#define ANC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "ratmath/int_util.h"

namespace anc::bench {

inline Int
envInt(const char *name, Int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoll(v, nullptr, 10);
}

inline bool
fullScale()
{
    return envInt("ANC_BENCH_FULL", 0) != 0;
}

/** Processor counts on the paper's x axes (Figures 4 and 5). */
inline std::vector<Int>
paperProcessorCounts()
{
    return {1, 2, 4, 8, 12, 16, 20, 24, 28};
}

/** Print a fixed-width row of a speedup table. */
inline void
printSpeedupHeader(const char *title, const std::vector<std::string> &cols)
{
    std::printf("\n%s\n", title);
    std::printf("%6s", "P");
    for (const std::string &c : cols)
        std::printf("  %10s", c.c_str());
    std::printf("\n");
}

inline void
printSpeedupRow(Int p, const std::vector<double> &speedups)
{
    std::printf("%6lld", static_cast<long long>(p));
    for (double s : speedups)
        std::printf("  %10.2f", s);
    std::printf("\n");
}

/** Wall-clock stopwatch for instrumenting simulator calls. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Machine-readable results file. Collects named flags (problem size,
 * option settings) and per-run records, then writes BENCH_<name>.json:
 *
 *   {"bench": "fig4_gemm",
 *    "flags": {"N": 140, "blockTransfers": true},
 *    "runs": [{"label": "gemmB", "P": 28, "wall_s": 1.2e-3,
 *              "sim_time_us": 5.1e4, "speedup": 21.3}]}
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    void
    flag(const std::string &key, const std::string &value)
    {
        flags_.emplace_back(key, "\"" + escape(value) + "\"");
    }

    void
    flag(const std::string &key, const char *value)
    {
        flag(key, std::string(value));
    }

    void
    flag(const std::string &key, Int value)
    {
        flags_.emplace_back(key,
                            std::to_string(static_cast<long long>(value)));
    }

    void
    flag(const std::string &key, bool value)
    {
        flags_.emplace_back(key, value ? "true" : "false");
    }

    void
    flag(const std::string &key, double value)
    {
        flags_.emplace_back(key, num(value));
    }

    /** Record one simulated run: wall-clock seconds spent simulating,
     * simulated parallel time in microseconds, and the derived speedup
     * (0 when not meaningful for the bench). */
    void
    run(const std::string &label, Int p, double wall_s, double sim_time_us,
        double speedup = 0.0)
    {
        runs_.push_back({label, p, wall_s, sim_time_us, speedup, {}});
    }

    /** Same, plus extra pre-rendered JSON key/value pairs appended to
     * the record (e.g. {"classes": "141"} for aggregated runs). */
    void
    run(const std::string &label, Int p, double wall_s, double sim_time_us,
        double speedup,
        const std::vector<std::pair<std::string, std::string>> &extra)
    {
        runs_.push_back({label, p, wall_s, sim_time_us, speedup, extra});
    }

    /** Embed a metrics snapshot in the report (a "metrics" key holding
     * the registry's counters/histograms JSON). */
    void
    metrics(const obs::MetricsRegistry &reg)
    {
        metrics_ = reg.renderJson();
    }

    /** Write BENCH_<name>.json into the current directory. */
    void
    write() const
    {
        std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"flags\": {",
                     escape(name_).c_str());
        for (size_t i = 0; i < flags_.size(); ++i)
            std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                         escape(flags_[i].first).c_str(),
                         flags_[i].second.c_str());
        std::fprintf(f, "},\n");
        if (!metrics_.empty())
            std::fprintf(f, "  \"metrics\": %s,\n", metrics_.c_str());
        std::fprintf(f, "  \"runs\": [");
        for (size_t i = 0; i < runs_.size(); ++i) {
            const Run &r = runs_[i];
            std::fprintf(f,
                         "%s\n    {\"label\": \"%s\", \"P\": %lld, "
                         "\"wall_s\": %s, \"sim_time_us\": %s, "
                         "\"speedup\": %s",
                         i ? "," : "", escape(r.label).c_str(),
                         static_cast<long long>(r.p), num(r.wall_s).c_str(),
                         num(r.simTimeUs).c_str(), num(r.speedup).c_str());
            for (const auto &[k, v] : r.extra)
                std::fprintf(f, ", \"%s\": %s", escape(k).c_str(),
                             v.c_str());
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (%zu runs)\n", path.c_str(), runs_.size());
    }

  private:
    struct Run
    {
        std::string label;
        Int p;
        double wall_s;
        double simTimeUs;
        double speedup;
        std::vector<std::pair<std::string, std::string>> extra;
    };

    static std::string
    num(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        return buf;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string name_;
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<Run> runs_;
    std::string metrics_; //!< pre-rendered registry JSON, may be empty
};

} // namespace anc::bench

#endif // ANC_BENCH_BENCH_UTIL_H
