/**
 * @file
 * Compiler-pass cost ablation: how the paper's algorithms scale with
 * nest depth and matrix size. Not a paper figure -- a design-choice
 * ablation for the exact-arithmetic implementation (DESIGN.md): Hermite
 * normal form, Fourier-Motzkin elimination, the legality algorithms,
 * and the full pipeline.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "core/compiler.h"
#include "ir/builder.h"
#include "ratmath/hnf.h"
#include "ratmath/linalg.h"
#include "ratmath/smith.h"
#include "xform/fourier_motzkin.h"
#include "xform/legal.h"

namespace {

using namespace anc;

/** Random nonsingular matrix with small entries (deterministic seed). */
IntMatrix
randomMatrix(size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<Int> d(-4, 4);
    while (true) {
        IntMatrix m(n, n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                m(i, j) = d(rng);
        if (determinant(m) != 0)
            return m;
    }
}

/** A dense triangular nest of the given depth (one statement). */
ir::Program
deepNest(size_t depth)
{
    ir::ProgramBuilder b(depth);
    size_t pn = b.param("N");
    auto N = b.par(pn);
    std::vector<ir::AffineExpr> subs;
    b.array("A", std::vector<ir::AffineExpr>(depth, N + b.cst(1)),
            ir::DistributionSpec::wrapped(depth - 1));
    for (size_t k = 0; k < depth; ++k) {
        if (k == 0)
            b.loop("i0", b.cst(0), N - b.cst(1));
        else
            b.loop("i" + std::to_string(k), b.var(k - 1), N - b.cst(1));
        subs.push_back(b.var(k));
    }
    // Skewed subscripts exercise the whole pipeline.
    for (size_t k = 0; k + 1 < depth; ++k)
        subs[k] = b.var(k) - b.var(k + 1) + N;
    b.assign(b.ref(0, subs),
             ir::Expr::binary('+', ir::Expr::arrayRead(b.ref(0, subs)),
                              ir::Expr::number_(1.0)));
    return b.build();
}

void
BM_Compile_ColumnHNF(benchmark::State &state)
{
    IntMatrix m = randomMatrix(size_t(state.range(0)), 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(columnHNF(m));
}
BENCHMARK(BM_Compile_ColumnHNF)->DenseRange(2, 8, 2);

void
BM_Compile_SmithForm(benchmark::State &state)
{
    IntMatrix m = randomMatrix(size_t(state.range(0)), 43);
    for (auto _ : state)
        benchmark::DoNotOptimize(smithForm(m));
}
BENCHMARK(BM_Compile_SmithForm)->DenseRange(2, 8, 2);

void
BM_Compile_MatrixInverse(benchmark::State &state)
{
    IntMatrix m = randomMatrix(size_t(state.range(0)), 44);
    for (auto _ : state)
        benchmark::DoNotOptimize(inverse(m));
}
BENCHMARK(BM_Compile_MatrixInverse)->DenseRange(2, 8, 2);

void
BM_Compile_FourierMotzkin(benchmark::State &state)
{
    ir::Program p = deepNest(size_t(state.range(0)));
    auto cons = p.nest.constraints(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            xform::fourierMotzkin(cons, p.nest.depth(), 1));
}
BENCHMARK(BM_Compile_FourierMotzkin)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void
BM_Compile_LegalInvt(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    IntMatrix basis(0, n);
    IntMatrix deps(n, 1);
    deps(n - 1, 0) = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(xform::legalInvertible(basis, deps));
}
BENCHMARK(BM_Compile_LegalInvt)->DenseRange(2, 8, 2);

void
BM_Compile_FullPipeline(benchmark::State &state)
{
    ir::Program p = deepNest(size_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::compile(p));
}
BENCHMARK(BM_Compile_FullPipeline)->DenseRange(2, 5, 1)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    // No simulated workload here; the JSON records the wall cost of the
    // full compile pipeline per nest depth (P column carries the depth).
    bench::JsonReport report("compile");
    for (Int depth : {2, 3, 4, 5}) {
        ir::Program p = deepNest(size_t(depth));
        bench::WallTimer timer;
        core::Compilation c = core::compile(p);
        benchmark::DoNotOptimize(c);
        report.run("full_pipeline_depth", depth, timer.seconds(), 0.0);
    }
    report.write();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
