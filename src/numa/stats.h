/**
 * @file
 * Execution statistics gathered by the NUMA simulator.
 */

#ifndef ANC_NUMA_STATS_H
#define ANC_NUMA_STATS_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ratmath/int_util.h"

namespace anc::numa {

/** Per-processor counters and simulated clock. */
struct ProcStats
{
    Int proc = 0;
    uint64_t iterations = 0;     //!< innermost iterations executed
    uint64_t flops = 0;
    uint64_t localAccesses = 0;
    uint64_t remoteAccesses = 0; //!< element-wise remote references
    uint64_t blockTransfers = 0; //!< hoisted block messages
    uint64_t blockElements = 0;  //!< elements moved by block transfers
    uint64_t guardChecks = 0;    //!< ownership-rule guard evaluations
    uint64_t syncs = 0;
    double time = 0.0;           //!< microseconds of simulated work
    /** Element-wise remote accesses broken down by array id (empty
     * until the first remote access; sized to the program's arrays). */
    std::vector<uint64_t> remoteByArray;

    void
    noteRemote(size_t array_id, size_t num_arrays)
    {
        remoteAccesses += 1;
        if (remoteByArray.empty())
            remoteByArray.assign(num_arrays, 0);
        remoteByArray[array_id] += 1;
    }
};

/**
 * Per-event costs (microseconds) used to derive ProcStats::time from
 * the integer counters. Deriving the clock once per processor -- rather
 * than accumulating doubles event by event -- makes the simulated time
 * a pure function of the counters, so every execution strategy (serial,
 * host-parallel, strength-reduced, closed-form) that produces the same
 * counts produces the bit-identical time.
 */
struct CostRates
{
    double loopOverhead = 0.0; //!< per innermost iteration
    double flop = 0.0;
    double local = 0.0;        //!< per local reference
    double remote = 0.0;       //!< per element-wise remote, with contention
    double blockStartup = 0.0; //!< per hoisted block message
    double blockElement = 0.0; //!< per moved element, with contention
    double guard = 0.0;        //!< per ownership-rule guard evaluation
    double sync = 0.0;
};

/** Set p.time from its counters; the fixed evaluation order below is
 * part of the simulator's determinism guarantee. */
inline void
finalizeProcTime(ProcStats &p, const CostRates &r)
{
    p.time = double(p.iterations) * r.loopOverhead +
             double(p.flops) * r.flop +
             double(p.localAccesses) * r.local +
             double(p.remoteAccesses) * r.remote +
             double(p.blockTransfers) * r.blockStartup +
             double(p.blockElements) * (r.blockElement + r.local) +
             double(p.guardChecks) * r.guard + double(p.syncs) * r.sync;
}

/** Whole-machine result of one simulated run. */
struct SimStats
{
    Int processors = 1;
    std::vector<ProcStats> perProc; //!< only the simulated processors
    bool sampled = false;           //!< true if not all P were simulated

    /** Parallel completion time: the slowest simulated processor. */
    double
    parallelTime() const
    {
        double t = 0.0;
        for (const ProcStats &p : perProc)
            t = std::max(t, p.time);
        return t;
    }

    /** Speedup relative to a sequential time. */
    double
    speedup(double sequential_time) const
    {
        double t = parallelTime();
        return t > 0.0 ? sequential_time / t : 0.0;
    }

    uint64_t
    totalRemoteAccesses() const
    {
        uint64_t n = 0;
        for (const ProcStats &p : perProc)
            n += p.remoteAccesses;
        return n;
    }

    uint64_t
    totalLocalAccesses() const
    {
        uint64_t n = 0;
        for (const ProcStats &p : perProc)
            n += p.localAccesses;
        return n;
    }

    uint64_t
    totalBlockTransfers() const
    {
        uint64_t n = 0;
        for (const ProcStats &p : perProc)
            n += p.blockTransfers;
        return n;
    }

    uint64_t
    totalIterations() const
    {
        uint64_t n = 0;
        for (const ProcStats &p : perProc)
            n += p.iterations;
        return n;
    }

    /** Element-wise remote accesses to one array across processors. */
    uint64_t
    remoteAccessesTo(size_t array_id) const
    {
        uint64_t n = 0;
        for (const ProcStats &p : perProc)
            if (array_id < p.remoteByArray.size())
                n += p.remoteByArray[array_id];
        return n;
    }

    /** Load imbalance: slowest simulated processor over the mean. */
    double
    imbalance() const
    {
        if (perProc.empty())
            return 1.0;
        double sum = 0.0;
        for (const ProcStats &p : perProc)
            sum += p.time;
        double mean = sum / double(perProc.size());
        return mean > 0.0 ? parallelTime() / mean : 1.0;
    }
};

/** Human-readable per-processor traffic table. */
inline std::string
summarize(const SimStats &s)
{
    std::ostringstream os;
    os << "P = " << s.processors << (s.sampled ? " (sampled)" : "")
       << ", parallel time " << s.parallelTime() << " us, imbalance "
       << s.imbalance() << "\n";
    os << "proc  iterations      local     remote     blocks      "
          "syncs   time(us)\n";
    for (const ProcStats &p : s.perProc) {
        os << p.proc << "  " << p.iterations << "  " << p.localAccesses
           << "  " << p.remoteAccesses << "  " << p.blockTransfers
           << "  " << p.syncs << "  " << p.time << "\n";
    }
    return os.str();
}

} // namespace anc::numa

#endif // ANC_NUMA_STATS_H
