file(REMOVE_RECURSE
  "CMakeFiles/loop_nest_test.dir/loop_nest_test.cc.o"
  "CMakeFiles/loop_nest_test.dir/loop_nest_test.cc.o.d"
  "loop_nest_test"
  "loop_nest_test.pdb"
  "loop_nest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_nest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
