/**
 * @file
 * Typed counter/histogram metrics registry.
 *
 * The registry is a *sink*, not an instrumentation point: hot loops
 * (the simulator's walkers) keep accumulating their plain per-processor
 * integer counters exactly as before, and the registry is filled once
 * per run from the finished numa::SimStats / core::Compilation, in
 * processor order. That gives three properties the hot path could not
 * provide:
 *
 *   - zero overhead when off: disabled runs never see the registry at
 *     all -- no atomics, no branches beyond the existing code;
 *   - a single source of truth: every metric is derived from the same
 *     counters the simulator reports, so they can never disagree with
 *     SimStats (no double counting);
 *   - determinism: aggregation order is fixed (processor order,
 *     insertion order), so the rendered snapshot is byte-stable for a
 *     deterministic run.
 *
 * Counters are monotone uint64 sums; histograms bucket uint64 samples
 * by power of two (bucket i holds values with bit-width i) and track
 * count/sum/min/max exactly.
 */

#ifndef ANC_OBS_METRICS_H
#define ANC_OBS_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace anc::obs {

/** Monotone counter. */
class Counter
{
  public:
    void add(uint64_t d) { value_ += d; }
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Power-of-two histogram of uint64 samples. */
class Histogram
{
  public:
    void record(uint64_t v);
    /** Record the same value `n` times (aggregated symmetry classes
     * feed one representative value per class member). */
    void record(uint64_t v, uint64_t n);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    /** Samples in bucket i (values of bit-width i; v = 0 is bucket 0,
     * 1 is bucket 1, 2..3 bucket 2, 4..7 bucket 3, ...). */
    uint64_t bucket(size_t i) const { return buckets_[i]; }
    static constexpr size_t kBuckets = 65;

    /**
     * Upper bound on the q-quantile (0 < q <= 1): the bucket upper
     * bound of the first bucket whose cumulative count reaches
     * ceil(q * count), clamped to max(). Exact for the tracked extremes
     * (quantileUpperBound(1.0) == max()); within one power of two
     * otherwise, which is all a pow2 histogram can promise. 0 when
     * empty.
     */
    uint64_t quantileUpperBound(double q) const;

    /** {"count": n, "sum": s, "min": m, "max": M,
     *  "buckets": {"<=upper": n, ...}} -- only nonempty buckets. */
    std::string renderJson() const;

  private:
    uint64_t count_ = 0, sum_ = 0;
    uint64_t min_ = ~0ull, max_ = 0;
    uint64_t buckets_[kBuckets] = {};
};

/**
 * A named registry of counters and histograms, insertion-ordered so the
 * rendered snapshot is deterministic. Lookup is linear: the registry
 * holds dozens of entries and is only touched outside hot loops.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Value of a counter, 0 when absent. */
    uint64_t value(const std::string &name) const;
    bool hasCounter(const std::string &name) const;

    bool
    empty() const
    {
        return counters_.empty() && histograms_.empty();
    }

    const std::vector<std::pair<std::string, Counter>> &
    counters() const
    {
        return counters_;
    }

    const std::vector<std::pair<std::string, Histogram>> &
    histograms() const
    {
        return histograms_;
    }

    /** {"counters": {...}, "histograms": {...}} in insertion order. */
    std::string renderJson() const;

    /**
     * Prometheus text exposition (version 0.0.4): counters as
     * `# TYPE <name> counter` + one sample, histograms as cumulative
     * `_bucket{le="..."}` samples (power-of-two upper bounds, only
     * nonempty buckets plus the mandatory +Inf) with `_sum` and
     * `_count`. Names are sanitized to the Prometheus charset (every
     * other character becomes '_'); emission order is insertion order
     * (counters, then histograms), so the snapshot is byte-stable for
     * a deterministic run. Ends with a newline.
     */
    std::string renderExposition() const;

  private:
    std::vector<std::pair<std::string, Counter>> counters_;
    std::vector<std::pair<std::string, Histogram>> histograms_;
};

/** One timed compilation phase (BasisMatrix, LegalBasis, codegen, ...). */
struct PhaseTime
{
    std::string name;
    std::string tier; //!< degradation-ladder rung it ran under ("" = n/a)
    double us = 0.0;  //!< wall-clock microseconds
};

/**
 * Wall-clock stopwatch for compiler phases: records a PhaseTime per
 * phase and, when a Trace is attached, a matching wall-clock span. The
 * output vector is always recorded (a steady_clock read per phase is
 * noise next to any pipeline stage); only the trace is optional.
 */
class PhaseClock
{
  public:
    PhaseClock(std::vector<PhaseTime> *out, Trace *trace, int64_t pid)
        : out_(out), trace_(trace), pid_(pid)
    {
    }

    /** Annotate subsequently recorded phases with a ladder tier. */
    void setTier(std::string tier) { tier_ = std::move(tier); }

    /** RAII scope: times one phase from construction to destruction. */
    class Scope
    {
      public:
        Scope(PhaseClock &pc, const char *name)
            : pc_(pc), name_(name),
              t0_(std::chrono::steady_clock::now()),
              traceTs0_(pc.trace_ ? pc.trace_->nowUs() : 0.0)
        {
        }

        ~Scope()
        {
            double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0_)
                            .count();
            if (pc_.out_)
                pc_.out_->push_back({name_, pc_.tier_, us});
            if (pc_.trace_) {
                std::vector<std::pair<std::string, std::string>> args;
                if (!pc_.tier_.empty())
                    args.emplace_back("tier", jsonStr(pc_.tier_));
                pc_.trace_->completeWallSpan(name_, pc_.pid_, 0, traceTs0_,
                                             std::move(args));
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseClock &pc_;
        const char *name_;
        std::chrono::steady_clock::time_point t0_;
        double traceTs0_;
    };

    Scope phase(const char *name) { return Scope(*this, name); }

  private:
    friend class Scope;
    std::vector<PhaseTime> *out_;
    Trace *trace_;
    int64_t pid_;
    std::string tier_;
};

} // namespace anc::obs

#endif // ANC_OBS_METRICS_H
