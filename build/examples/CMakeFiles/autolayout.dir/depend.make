# Empty dependencies file for autolayout.
# This may be replaced when dependencies are built.
