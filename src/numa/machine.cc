#include "numa/machine.h"

namespace anc::numa {

MachineParams
MachineParams::butterflyGP1000()
{
    MachineParams m;
    m.name = "BBN Butterfly GP1000";
    m.localAccessTime = 0.6;
    m.remoteAccessTime = 6.6;
    m.blockStartupTime = 8.0;
    m.blockPerByteTime = 0.31;
    // MC68020/68881 nodes: a double-precision multiply-add costs a few
    // microseconds; 2.5 us per flop makes compute comparable to a
    // handful of local references, which is what lets gemmB approach
    // linear speedup in the paper while untransformed gemm saturates.
    m.flopTime = 2.5;
    m.loopOverheadTime = 1.0;
    m.guardTime = 1.2; // two local references worth of mod/compare
    m.syncTime = 30.0;
    return m;
}

MachineParams
MachineParams::ipsc860()
{
    MachineParams m;
    m.name = "Intel iPSC/i860";
    m.localAccessTime = 0.1;
    // Message-passing machine: a remote element access is a small
    // message exchange.
    m.remoteAccessTime = 70.0;
    m.blockStartupTime = 70.0;
    m.blockPerByteTime = 1.0 / 8.0; // ~1 us per double
    m.flopTime = 0.05;              // i860 pipelines
    m.loopOverheadTime = 0.1;
    m.guardTime = 0.2;
    m.syncTime = 100.0;
    return m;
}

} // namespace anc::numa
