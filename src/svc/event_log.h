/**
 * @file
 * Deterministic structured event log for the compilation service.
 *
 * The service's per-request lifecycle -- admission, parse,
 * canonicalization, cache lookup, compilation, validation, retries,
 * verdict -- is invisible in the batch summary: the summary says *what*
 * each request ended as, not *how it got there*. The event log records
 * the how, as JSON Lines: one JSON object per line, one line per
 * lifecycle step, correlated across lines by the request id.
 *
 * Determinism is the design constraint. Events carry a monotone
 * sequence number instead of a timestamp, the key order inside every
 * object is fixed, and every field value is derived from the same
 * deterministic state the verdicts are -- so for a fixed (stream,
 * budgets, fault schedule) the rendered log reproduces byte for byte,
 * making it diffable in CI the same way the cache journal is.
 *
 * Line shape:
 *
 *   {"seq": N, "request": "ID", "event": "NAME", ...event fields...}
 *
 * The leading three keys are always present, in that order; the
 * trailing fields are per-event but likewise fixed per event name.
 * Consumers stream line by line and never need existence checks on the
 * leading keys.
 *
 * The log is a sink with no service dependencies (mirroring obs/):
 * field values are pre-rendered JSON scalars (obs::jsonStr /
 * obs::jsonNum), so EventLog itself is deterministic string assembly.
 */

#ifndef ANC_SVC_EVENT_LOG_H
#define ANC_SVC_EVENT_LOG_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace anc::svc {

/** Append-only JSONL sink for service lifecycle events. */
class EventLog
{
  public:
    /** One event field: name and pre-rendered JSON value (use
     * obs::jsonStr / obs::jsonNum; a raw "true"/"false" is fine). */
    using Field = std::pair<std::string, std::string>;

    /** Append one event line. `fields` follow the fixed leading keys
     * in the given order. */
    void emit(const std::string &request, const std::string &event,
              const std::vector<Field> &fields = {});

    /** The whole log so far: zero or more '\n'-terminated JSON lines. */
    const std::string &text() const { return text_; }

    /** Events emitted so far (the next event's "seq"). */
    uint64_t events() const { return seq_; }

  private:
    std::string text_;
    uint64_t seq_ = 0;
};

} // namespace anc::svc

#endif // ANC_SVC_EVENT_LOG_H
