/**
 * @file
 * Unit tests for the data access matrix and its importance ordering.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/gallery.h"
#include "xform/access_matrix.h"

namespace anc::xform {
namespace {

TEST(AccessMatrixTest, Figure1MatchesPaper)
{
    // Section 2.2: rows j-i (x2, dist), j+k (x1, dist), i (x3, non-dist).
    AccessMatrixInfo info = buildAccessMatrix(ir::gallery::figure1());
    ASSERT_EQ(info.numRows(), 3u);
    EXPECT_EQ(info.matrix, (IntMatrix{{-1, 1, 0}, {0, 1, 1}, {1, 0, 0}}));
    EXPECT_TRUE(info.rows[0].distDim);
    EXPECT_EQ(info.rows[0].count, 2u);
    EXPECT_TRUE(info.rows[1].distDim);
    EXPECT_EQ(info.rows[1].count, 1u);
    EXPECT_FALSE(info.rows[2].distDim);
    EXPECT_EQ(info.rows[2].count, 3u);
    EXPECT_EQ(info.rows[0].origin, "B dim 1");
}

TEST(AccessMatrixTest, GemmMatchesPaperSection81)
{
    AccessMatrixInfo info = buildAccessMatrix(ir::gallery::gemm());
    ASSERT_EQ(info.numRows(), 3u);
    EXPECT_EQ(info.matrix, (IntMatrix{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}));
}

TEST(AccessMatrixTest, Syr2kRowsAndClasses)
{
    // The three distribution-dimension subscripts (j-i, i-k, j-k) must
    // precede the non-distribution ones (k, i); k occurs 4 times and so
    // dominates i (2 times).
    AccessMatrixInfo info =
        buildAccessMatrix(ir::gallery::syr2kBanded());
    ASSERT_EQ(info.numRows(), 5u);
    EXPECT_EQ(info.matrix.row(0), (IntVec{-1, 1, 0})); // j - i
    EXPECT_TRUE(info.rows[0].distDim);
    EXPECT_TRUE(info.rows[1].distDim);
    EXPECT_TRUE(info.rows[2].distDim);
    EXPECT_FALSE(info.rows[3].distDim);
    EXPECT_FALSE(info.rows[4].distDim);
    EXPECT_EQ(info.matrix.row(3), (IntVec{0, 0, 1})); // k, count 4
    EXPECT_EQ(info.rows[3].count, 4u);
    EXPECT_EQ(info.matrix.row(4), (IntVec{1, 0, 0})); // i, count 2
    EXPECT_EQ(info.rows[4].count, 2u);
    // The two distribution subscripts of the band arrays:
    EXPECT_EQ(info.matrix.row(1), (IntVec{1, 0, -1}));  // i - k
    EXPECT_EQ(info.matrix.row(2), (IntVec{0, 1, -1}));  // j - k
}

TEST(AccessMatrixTest, LoopInvariantSubscriptsOmitted)
{
    ir::ProgramBuilder b(2);
    size_t n = b.param("N");
    b.array("A", {b.par(n), b.par(n)}, ir::DistributionSpec::wrapped(1));
    b.loop("i", b.cst(0), b.cst(4));
    b.loop("j", b.cst(0), b.cst(4));
    // A[0, i+N]: first subscript loop-invariant, second has a param.
    b.assign(b.ref(0, {b.cst(0), b.var(0)}),
             ir::Expr::arrayRead(b.ref(0, {b.cst(0), b.var(1)})));
    AccessMatrixInfo info = buildAccessMatrix(b.build());
    ASSERT_EQ(info.numRows(), 2u);
    EXPECT_EQ(info.matrix.row(0), (IntVec{1, 0}));
    EXPECT_EQ(info.matrix.row(1), (IntVec{0, 1}));
}

TEST(AccessMatrixTest, ProportionalRowsKeptSeparately)
{
    // Section 5: i+j-k and 2i+2j-2k are distinct rows; BasisMatrix
    // discards the dependent one later.
    AccessMatrixInfo info =
        buildAccessMatrix(ir::gallery::section5Example());
    ASSERT_EQ(info.numRows(), 3u);
    EXPECT_EQ(info.matrix.row(0), (IntVec{1, 1, -1, 0}));
    EXPECT_EQ(info.matrix.row(1), (IntVec{2, 2, -2, 0}));
    EXPECT_EQ(info.matrix.row(2), (IntVec{0, 0, 1, -1}));
}

TEST(AccessMatrixTest, DistArraysRecorded)
{
    AccessMatrixInfo info = buildAccessMatrix(ir::gallery::figure1());
    // j-i is the distribution subscript of B only.
    ASSERT_EQ(info.rows[0].distArrays.size(), 1u);
    // arrayId 1 is B in figure1 (A declared first).
    EXPECT_EQ(info.rows[0].distArrays[0], 1u);
}

TEST(AccessMatrixTest, CountAggregatesDuplicates)
{
    // Same subscript used by two different arrays in their distribution
    // dimensions: one row, count 2, both arrays recorded.
    ir::ProgramBuilder b(2);
    b.array("A", {b.cst(8), b.cst(8)}, ir::DistributionSpec::wrapped(1));
    b.array("B", {b.cst(8), b.cst(8)}, ir::DistributionSpec::wrapped(1));
    b.loop("i", b.cst(0), b.cst(4));
    b.loop("j", b.cst(0), b.cst(3));
    b.assign(b.ref(0, {b.var(0), b.var(1)}),
             ir::Expr::arrayRead(b.ref(1, {b.var(0), b.var(1)})));
    AccessMatrixInfo info = buildAccessMatrix(b.build());
    ASSERT_EQ(info.numRows(), 2u);
    EXPECT_EQ(info.matrix.row(0), (IntVec{0, 1}));
    EXPECT_EQ(info.rows[0].count, 2u);
    EXPECT_EQ(info.rows[0].distArrays.size(), 2u);
}

TEST(AccessMatrixTest, DistributionHintToggle)
{
    // Ablation switch: without the hint, rows rank purely by frequency,
    // so Figure 1's matrix is headed by i (3 occurrences) instead of
    // the distribution subscript j-i.
    ir::Program p = ir::gallery::figure1();
    AccessMatrixInfo with = buildAccessMatrix(p, true);
    AccessMatrixInfo blind = buildAccessMatrix(p, false);
    EXPECT_EQ(with.matrix.row(0), (IntVec{-1, 1, 0}));  // j - i
    EXPECT_EQ(blind.matrix.row(0), (IntVec{1, 0, 0}));  // i
    // Row CONTENT is identical either way; only the order changes.
    EXPECT_EQ(with.numRows(), blind.numRows());
}

} // namespace
} // namespace anc::xform
