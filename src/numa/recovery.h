/**
 * @file
 * Recovery protocols for injected machine faults.
 *
 * Three responses, all charged to the simulated per-processor clock so
 * that the cost of surviving a fault is visible in parallelTime():
 *
 *   - retry with exponential backoff: a dropped block transfer or a
 *     transiently failing remote access is re-issued up to
 *     RetryPolicy::maxAttempts times, waiting backoffBase^i units of
 *     MachineParams::retryBackoffTime between attempts. A transfer
 *     whose every attempt fails is *abandoned*: its elements fall back
 *     to element-wise remote accesses (correct, but slow -- exactly the
 *     degradation the paper's block-transfer argument trades against).
 *     A remote access that exhausts its attempts escalates to a
 *     synchronous acknowledged fetch (charged one sync).
 *
 *   - checksum verification: each hoisted block carries a checksum (the
 *     fletcher64 of its payload, in a real runtime); a corrupted
 *     arrival is detected and the block re-fetched once over a path
 *     that is checked again (one backoff unit plus a full re-send).
 *
 *   - work redistribution: when a processor dies, its unstarted outer
 *     slices are reassigned round-robin to the survivors (legal
 *     because the distributed outer loop is parallel); the simulator
 *     implements this directly (Simulator::run), these helpers only
 *     charge the per-message recovery costs.
 *
 * All charging is closed-form over contiguous runs of logical events,
 * so the strength-reduced simulator paths stay closed-form and the
 * counters -- and therefore the derived clock -- are bit-identical
 * across host thread counts and execution strategies.
 *
 * Observability: recovery work is never traced from inside these
 * helpers (they run in the simulator's hot path). Instead, the fault
 * counters they charge (ProcStats::transferRetries / transferRefetches
 * / remoteRetries / abandonedTransfers) are snapshotted by the
 * simulator at outer-slice boundaries and surface in the trace as
 * "retry" / "refetch" / "abandon" instant events stamped from the
 * simulated clock, and in the metrics registry as
 * `sim.*.transfer_retries` etc. (core::recordSimMetrics). That keeps
 * the off-switch free and the events as deterministic as the counters.
 */

#ifndef ANC_NUMA_RECOVERY_H
#define ANC_NUMA_RECOVERY_H

#include "numa/fault_model.h"
#include "numa/stats.h"

namespace anc::numa {

/** Retry protocol parameters for failed transfers and accesses. */
struct RetryPolicy
{
    /** Total send attempts per message before giving up (>= 1). */
    int maxAttempts = 4;
    /** Exponential backoff multiplier: the wait before retry i is
     * backoffBase^(i-1) units of MachineParams::retryBackoffTime. */
    int backoffBase = 2;

    /** Throws UserError on out-of-range values. */
    void validate() const;
};

/** Backoff units accumulated over `failures` consecutive failed
 * attempts: sum of base^i for i in [0, failures). */
uint64_t backoffUnitsFor(int failures, int base);

/** How a contiguous batch of block transfers fared under injection. */
struct TransferBatchOutcome
{
    uint64_t completed = 0; //!< transfers that eventually arrived
    uint64_t abandoned = 0; //!< transfers given up after maxAttempts
};

/**
 * Charge recovery costs for `total` consecutive logical block
 * transfers of one reference stream (1-based indices firstIdx+1 ..
 * firstIdx+total), each moving elemsPerTransfer elements of array
 * arrayId. Increments the retry/refetch/backoff/abandoned counters on
 * ps, and charges the elements of abandoned transfers as element-wise
 * remote accesses. Does NOT touch blockTransfers/blockElements: the
 * caller charges those for the `completed` transfers, exactly as in a
 * fault-free run.
 */
TransferBatchOutcome chargeTransferBatch(ProcStats &ps,
                                         const FaultOptions &f,
                                         const RetryPolicy &rp,
                                         uint64_t firstIdx, uint64_t total,
                                         uint64_t elemsPerTransfer,
                                         size_t arrayId, size_t numArrays);

/**
 * Charge recovery costs for `total` consecutive logical element-wise
 * remote accesses (indices firstIdx+1 .. firstIdx+total). Remote
 * accesses always complete -- transient failures retry, and exhausted
 * retries escalate to a synchronous fetch -- so the caller charges the
 * base accesses unconditionally.
 */
void chargeRemoteBatch(ProcStats &ps, const FaultOptions &f,
                       const RetryPolicy &rp, uint64_t firstIdx,
                       uint64_t total);

/** Elements of an abandoned (never-arrived) block charged as
 * element-wise remote accesses. */
inline void
chargeAbandonedElements(ProcStats &ps, size_t array_id, size_t num_arrays,
                        uint64_t elems)
{
    if (elems == 0)
        return;
    ps.remoteAccesses += elems;
    if (ps.remoteByArray.empty())
        ps.remoteByArray.assign(num_arrays, 0);
    ps.remoteByArray[array_id] += elems;
}

/**
 * Fletcher-64 checksum over a double payload -- the integrity check a
 * real block-transfer runtime would ship with each message (the
 * simulator's injector marks corrupt arrivals directly; tests and the
 * fault-sweep bench use this to certify result arrays bit-identical
 * across fault injections).
 */
uint64_t fletcher64(const double *data, size_t n);

} // namespace anc::numa

#endif // ANC_NUMA_RECOVERY_H
