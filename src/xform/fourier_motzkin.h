/**
 * @file
 * Exact (rational, parametric) Fourier-Motzkin elimination.
 *
 * Given the bound constraints of a transformed iteration space, FM
 * elimination produces, for every loop level k, lower and upper bounds
 * that are affine in the outer variables u_0..u_{k-1} and the symbolic
 * parameters. Variables are eliminated innermost-first so that level k's
 * bounds never mention inner variables; parameters are never eliminated
 * and simply ride along (their coefficients do not participate in the
 * sign decisions, which only involve the numeric variable coefficient).
 */

#ifndef ANC_XFORM_FOURIER_MOTZKIN_H
#define ANC_XFORM_FOURIER_MOTZKIN_H

#include <vector>

#include "ir/loop_nest.h"

namespace anc::xform {

/** Per-level bounds computed by elimination. */
struct FMBounds
{
    /** lower[k] / upper[k]: affine expressions over (vars, params) using
     * only variables 0..k-1; the loop runs from ceil(max(lower)) to
     * floor(min(upper)). */
    std::vector<std::vector<ir::AffineExpr>> lower;
    std::vector<std::vector<ir::AffineExpr>> upper;
    /**
     * Leftover constraints mentioning only parameters: each expression
     * must be >= 0 for the iteration space to be nonempty. (For a
     * well-formed program these hold whenever the source loops are
     * nonempty.)
     */
    std::vector<ir::AffineExpr> paramConditions;
    /** True if elimination derived the contradiction "negative >= 0"
     * with no parameters involved: the space is provably empty. When
     * set, paramConditions is empty; the bound lists are still solved
     * wherever both sides exist (so emitted loops run zero trips), but
     * a level whose lower or upper side is missing -- vacuous in an
     * empty space, not unbounded -- is left without bounds. */
    bool infeasible = false;
};

/**
 * Eliminate all num_vars variables from the constraint system
 * (each constraint means expr >= 0). Throws UserError if some level
 * ends up with no lower or no upper bound (unbounded space). A
 * constant-only false constraint -- in the input or derived while
 * eliminating -- makes the call return with `infeasible` set instead,
 * taking precedence over any unboundedness discovered later.
 */
FMBounds fourierMotzkin(const std::vector<ir::LinearConstraint> &cons,
                        size_t num_vars, size_t num_params);

} // namespace anc::xform

#endif // ANC_XFORM_FOURIER_MOTZKIN_H
