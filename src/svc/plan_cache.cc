#include "svc/plan_cache.h"

#include "ratmath/hash.h"
#include "ratmath/int_util.h"

namespace anc::svc {

const char *
cacheEventName(CacheEvent::Kind k)
{
    switch (k) {
    case CacheEvent::Kind::Hit:
        return "hit";
    case CacheEvent::Kind::Miss:
        return "miss";
    case CacheEvent::Kind::Insert:
        return "insert";
    case CacheEvent::Kind::Evict:
        return "evict";
    case CacheEvent::Kind::Reject:
        return "reject";
    }
    return "unknown";
}

size_t
PlanCache::estimateBytes(const CachedPlan &plan)
{
    // Deterministic: text artifact sizes plus a flat per-entry
    // overhead, summed through the checked (and fault-injectable)
    // integer path. Never allocator- or host-dependent.
    constexpr Int kEntryOverhead = 256;
    Int total = kEntryOverhead;
    total = checkedAdd(total, Int(plan.canonicalText.size()));
    total = checkedAdd(total, Int(plan.compilation.nodeProgram.size()));
    for (const core::Diagnostic &d :
         plan.compilation.diagnostics.all()) {
        total = checkedAdd(total, Int(d.message.size()));
        total = checkedAdd(total, Int(d.detail.size()));
    }
    return size_t(total);
}

const CachedPlan *
PlanCache::lookup(const PlanKey &key)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        journal_.push_back({CacheEvent::Kind::Miss, key});
        return nullptr;
    }
    ++hits_;
    journal_.push_back({CacheEvent::Kind::Hit, key});
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
}

bool
PlanCache::contains(const PlanKey &key) const
{
    return index_.find(key) != index_.end();
}

void
PlanCache::evictUntilFits(size_t incoming)
{
    while (!order_.empty() && bytes_ + incoming > budget_) {
        Entry &lru = order_.back();
        journal_.push_back({CacheEvent::Kind::Evict, lru.first});
        ++evictions_;
        bytes_ -= lru.second.bytes;
        index_.erase(lru.first);
        order_.pop_back();
    }
}

bool
PlanCache::insert(const PlanKey &key, CachedPlan plan)
{
    if (plan.bytes == 0)
        plan.bytes = estimateBytes(plan);
    if (plan.bytes > budget_) {
        ++rejections_;
        journal_.push_back({CacheEvent::Kind::Reject, key});
        return false;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh in place: drop the old entry's bytes, then treat the
        // new content as a fresh admission at MRU position.
        bytes_ -= it->second->second.bytes;
        order_.erase(it->second);
        index_.erase(it);
    }
    evictUntilFits(plan.bytes);
    bytes_ += plan.bytes;
    order_.emplace_front(key, std::move(plan));
    index_[key] = order_.begin();
    ++insertions_;
    journal_.push_back({CacheEvent::Kind::Insert, key});
    return true;
}

std::string
PlanCache::journalText() const
{
    std::string out;
    for (const CacheEvent &e : journal_) {
        out += cacheEventName(e.kind);
        out += ' ';
        out += e.key.hex();
        out += '\n';
    }
    return out;
}

namespace {

/** First 16 hex digits of hash128(body): the per-line checksum. */
std::string
lineChecksum(const std::string &body)
{
    return hash128(body).hex().substr(0, 16);
}

/** Parse exactly 16 lowercase hex digits into a word. */
bool
parseHex64(const std::string &s, size_t at, uint64_t &out)
{
    if (at + 16 > s.size())
        return false;
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
        char c = s[at + i];
        uint64_t d;
        if (c >= '0' && c <= '9')
            d = uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = uint64_t(c - 'a') + 10;
        else
            return false;
        v = (v << 4) | d;
    }
    out = v;
    return true;
}

/** "hit <32 hex digits>" -> event; false on any malformation. */
bool
parseEventBody(const std::string &body, CacheEvent &out)
{
    size_t sp = body.find(' ');
    if (sp == std::string::npos)
        return false;
    std::string name = body.substr(0, sp);
    CacheEvent::Kind kind;
    if (name == "hit")
        kind = CacheEvent::Kind::Hit;
    else if (name == "miss")
        kind = CacheEvent::Kind::Miss;
    else if (name == "insert")
        kind = CacheEvent::Kind::Insert;
    else if (name == "evict")
        kind = CacheEvent::Kind::Evict;
    else if (name == "reject")
        kind = CacheEvent::Kind::Reject;
    else
        return false;
    if (body.size() != sp + 1 + 32)
        return false;
    Hash128 h;
    if (!parseHex64(body, sp + 1, h.hi) ||
        !parseHex64(body, sp + 17, h.lo))
        return false;
    out = CacheEvent{kind, PlanKey{h}};
    return true;
}

} // namespace

std::string
PlanCache::durableJournalText() const
{
    std::string out;
    for (const CacheEvent &e : journal_) {
        std::string body = cacheEventName(e.kind);
        body += ' ';
        body += e.key.hex();
        out += body;
        out += ' ';
        out += lineChecksum(body);
        out += '\n';
    }
    return out;
}

JournalReplay
PlanCache::replayJournal(const std::string &text)
{
    JournalReplay r;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            // No newline: the writer died mid-append. The torn tail is
            // dropped without being counted as corruption.
            r.truncatedTail = true;
            break;
        }
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        size_t sp = line.rfind(' ');
        CacheEvent e;
        if (sp == std::string::npos ||
            line.substr(sp + 1) != lineChecksum(line.substr(0, sp)) ||
            !parseEventBody(line.substr(0, sp), e)) {
            ++r.corruptLines;
            continue;
        }
        r.events.push_back(e);
        switch (e.kind) {
        case CacheEvent::Kind::Hit:
            ++r.hits;
            break;
        case CacheEvent::Kind::Miss:
            ++r.misses;
            break;
        case CacheEvent::Kind::Insert:
            ++r.insertions;
            break;
        case CacheEvent::Kind::Evict:
            ++r.evictions;
            break;
        case CacheEvent::Kind::Reject:
            ++r.rejections;
            break;
        }
    }
    return r;
}

void
PlanCache::adoptReplay(const JournalReplay &r)
{
    journal_.insert(journal_.begin(), r.events.begin(), r.events.end());
    hits_ += r.hits;
    misses_ += r.misses;
    insertions_ += r.insertions;
    evictions_ += r.evictions;
    rejections_ += r.rejections;
}

std::vector<PlanKey>
PlanCache::keysByRecency() const
{
    std::vector<PlanKey> keys;
    keys.reserve(order_.size());
    for (const Entry &e : order_)
        keys.push_back(e.first);
    return keys;
}

void
PlanCache::fillMetrics(obs::MetricsRegistry &m) const
{
    m.counter("svc.cache.hits").set(hits_);
    m.counter("svc.cache.misses").set(misses_);
    m.counter("svc.cache.insertions").set(insertions_);
    m.counter("svc.cache.evictions").set(evictions_);
    m.counter("svc.cache.rejections").set(rejections_);
    m.counter("svc.cache.entries").set(order_.size());
    m.counter("svc.cache.bytes").set(bytes_);
}

} // namespace anc::svc
