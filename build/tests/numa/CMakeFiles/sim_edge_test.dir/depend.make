# Empty dependencies file for sim_edge_test.
# This may be replaced when dependencies are built.
