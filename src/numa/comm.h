/**
 * @file
 * Assembling communication matrices from simulator results.
 *
 * The simulator records one sparse origin->owner row per simulated
 * processor (ProcStats::comm, behind SimOptions::commMatrix); this
 * module turns a finished SimStats into the exportable
 * obs::CommMatrix, following the observability discipline: the builder
 * is a sink that derives everything from the finished stats, never a
 * second source of truth.
 *
 * Direct runs export per-processor rows as recorded. Aggregated runs
 * hold one representative row per symmetry class; the builder either
 *
 *   - expands them back to per-processor rows when the expansion fits
 *     the byte budget (owners translated by the member offset, which
 *     the translation-merge conditions of numa/symmetry.h prove
 *     exact), so small-P exports are byte-identical across
 *     symmetry=off|auto|force; or
 *
 *   - folds them into class-pair cells in closed form: for each
 *     representative edge, the number of class members whose
 *     translated owner lands in each target class is a congruence
 *     count over the class's processor ranges -- O(#classes^2 x
 *     #edges) total with no O(P) loop anywhere, which is what keeps a
 *     GEMM comm collection at P = 2^20 in flat wall time.
 */

#ifndef ANC_NUMA_COMM_H
#define ANC_NUMA_COMM_H

#include "numa/stats.h"
#include "obs/comm_matrix.h"

namespace anc::numa {

/**
 * Build the whole-machine communication matrix from a finished run.
 * Aggregated stats expand to per-processor rows when the expansion
 * fits materialize_budget bytes, and fold to class-pair cells
 * otherwise. Throws UserError on counter overflow and InternalError if
 * the class fold loses traffic (a symmetry-soundness violation).
 */
obs::CommMatrix
buildCommMatrix(const SimStats &stats,
                uint64_t materialize_budget =
                    obs::CommMatrix::kDefaultMaterializeBudget);

} // namespace anc::numa

#endif // ANC_NUMA_COMM_H
