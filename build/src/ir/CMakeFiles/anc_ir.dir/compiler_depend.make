# Empty compiler generated dependencies file for anc_ir.
# This may be replaced when dependencies are built.
