/**
 * @file
 * Translation validation for compiled plans.
 *
 * The paper's central claim is that invertible (including
 * non-unimodular) transformations are *exact*: the HNF-derived strides
 * and congruence anchors of a transformed nest scan precisely the image
 * lattice T.Z^n intersected with the image polyhedron, in
 * lexicographic order, and every dependence stays lexicographically
 * non-negative. This module proves that claim for one concrete
 * Compilation after the fact, the way a translation validator checks a
 * production compiler: it never trusts the pipeline that produced the
 * nest, only the source program, the matrix T, and the emitted loops.
 *
 * Three independent checks, decided SYMBOLICALLY (verify/symbolic.h):
 * parameters stay free symbols, so the verdict covers every parameter
 * value and the cost is independent of iteration-space size.
 *
 *  1. Lattice equivalence -- HNF/Smith/Diophantine agreement between
 *     T.Z^n and the emitted stride lattice, plus one Fourier-Motzkin
 *     implication proof per bound in each direction (source covers
 *     emitted, emitted covers source) over integer points.
 *
 *  2. Dependence preservation -- the leading nonzero of T*d must be
 *     positive for every dependence column, and the premise that the
 *     emitted nest scans lexicographically is re-derived symbolically
 *     (triangular bounds, positive strides) instead of by enumeration.
 *
 *  3. Differential execution -- T*T^-1 == I exactly and the emitted
 *     body equals the source body with every affine composed through
 *     x = T^-1 u, so both executions touch identical footprints;
 *     closed-form trip counts via abstract acceleration where they
 *     exist.
 *
 * Every check returns pass or fail -- there is no skipped verdict and
 * no "incomplete" escape hatch. An obligation the prover can neither
 * prove nor refute is a conservative FAIL with the reason in the
 * detail. On spaces small enough to enumerate, the old point-by-point
 * oracle reruns as a cross-check (enumerationOracle()); a divergence
 * between the two is itself a validation failure. Internal arithmetic
 * faults are NOT swallowed: they propagate as anc::Error so a serving
 * path can degrade the request rather than cache an unvalidated plan.
 */

#ifndef ANC_VERIFY_VERIFY_H
#define ANC_VERIFY_VERIFY_H

#include <string>
#include <vector>

#include "core/cancel.h"
#include "xform/transform.h"

namespace anc::verify {

/** The three independent validation checks. */
enum class CheckKind
{
    LatticeEquivalence,     //!< emitted points == T * (source lattice)
    DependencePreservation, //!< T*d lex-positive, emitted order lex
    DifferentialExecution,  //!< body footprints identical
};

const char *checkName(CheckKind k);

/** How a verdict was reached. */
enum class CheckMethod
{
    Symbolic,               //!< symbolic proof only (any space size)
    SymbolicAndEnumeration, //!< symbolic, cross-checked by enumeration
};

const char *methodName(CheckMethod m);

/** Outcome of one check: always a verdict, never a skip. */
struct CheckResult
{
    CheckKind kind = CheckKind::LatticeEquivalence;
    /** The check found no violation. */
    bool passed = false;
    /** How the verdict was reached. */
    CheckMethod method = CheckMethod::Symbolic;
    /** Explanation; on failure, includes a concrete counterexample
     * (a point with its parameter binding, a dependence column, or
     * the offending bound/subscript). */
    std::string detail;
};

/** Options for one validation run. */
struct ValidateOptions
{
    /** Parameter values tried by the enumeration cross-check until a
     * binding is feasible. */
    std::vector<Int> paramCandidates = {4, 3, 2, 6, 1, 8};
    /** Iteration-count cap for the enumeration cross-check; larger
     * spaces are validated symbolically only (the verdict does not
     * change -- the cross-check is extra evidence, not a gate). */
    uint64_t maxPoints = 1u << 18;
    /** Per-array element cap for the differential cross-check. */
    Int maxElements = 1 << 16;
    /** Randomized bindings tried by the differential cross-check. */
    int trials = 3;
    /** Seed for the deterministic binding generator. */
    uint64_t seed = 0x414e2d56; // "AN-V"
    /** Run the enumeration cross-check when a small feasible binding
     * exists (recommended; symbolic and concrete verdicts must agree,
     * and a divergence is reported as a failure). */
    bool crossCheck = true;
    /** Deadline that validation work is charged to (may be null). The
     * serving path passes the request's token so validation cannot
     * outlive the request budget. */
    core::CancelToken *cancel = nullptr;
};

/** The full validation verdict for one compiled nest. */
struct ValidationReport
{
    std::vector<CheckResult> checks;
    /** Parameter binding used by the enumeration cross-check (empty
     * when no cross-check ran or the program has no parameters). */
    IntVec params;

    /** Every check passed. */
    bool passed() const;
    /** Detail of the first failed check, or "" when none failed. */
    std::string firstFailure() const;
    /** Human-readable multi-line report. */
    std::string render() const;
};

/**
 * Validate that `nest` is an exact restructuring of `prog` under the
 * transformation it carries, and that it respects every dependence
 * column of `dep_matrix` (source-space distance vectors, one per
 * column, as produced by deps::DependenceInfo::matrix()).
 *
 * Never throws for a wrong nest -- wrongness is the verdict. Internal
 * arithmetic faults and deadline exhaustion DO propagate (anc::Error /
 * core::DeadlineExceeded): a caller that cannot finish validating must
 * not treat the plan as validated.
 */
ValidationReport validate(const ir::Program &prog,
                          const xform::TransformedNest &nest,
                          const IntMatrix &dep_matrix,
                          const ValidateOptions &opts = {});

/**
 * The point-by-point enumeration oracle, exposed for cross-checking
 * and property tests. Unlike validate() it may be infeasible (no small
 * parameter binding fits under the caps); that is reported in
 * `feasible`/`reason`, never as a verdict.
 */
struct EnumerationOracle
{
    bool feasible = false;  //!< a binding under the caps was found
    std::string reason;     //!< why not, when !feasible
    IntVec params;          //!< the binding used
    bool latticeOk = false; //!< emitted points == T*(source points)
    std::string latticeDetail;
    bool orderOk = false; //!< emitted visit order strictly lex
    std::string orderDetail;
    /** The concrete differential run happened (it additionally needs
     * the arrays to fit under maxElements at the binding). */
    bool differentialRan = false;
    bool differentialOk = false; //!< concrete footprints identical
    std::string differentialDetail;

    bool
    allOk() const
    {
        return latticeOk && orderOk && (!differentialRan || differentialOk);
    }
};

EnumerationOracle enumerationOracle(const ir::Program &prog,
                                    const xform::TransformedNest &nest,
                                    const ValidateOptions &opts = {});

} // namespace anc::verify

#endif // ANC_VERIFY_VERIFY_H
