/**
 * @file
 * Unit tests for the observability primitives: trace-event JSON
 * rendering (escaping, field order, fixed-point timestamps) and the
 * counter / histogram registry.
 */

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace anc::obs {
namespace {

TEST(TraceJson, StringEscaping)
{
    EXPECT_EQ(jsonStr("plain"), "\"plain\"");
    EXPECT_EQ(jsonStr("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonStr("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonStr("a\nb\tc"), "\"a\\nb\\tc\"");
    EXPECT_EQ(jsonStr(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(TraceJson, Numbers)
{
    EXPECT_EQ(jsonNum(uint64_t(0)), "0");
    EXPECT_EQ(jsonNum(uint64_t(18446744073709551615ull)),
              "18446744073709551615");
    EXPECT_EQ(jsonNum(int64_t(-42)), "-42");
}

TEST(TraceJson, CompleteSpanFieldOrderAndFixedPoint)
{
    TraceEvent e;
    e.name = "outer";
    e.ph = 'X';
    e.pid = 1;
    e.tid = 3;
    e.ts = 1.0 / 3.0;
    e.dur = 2.5;
    e.arg("v", jsonNum(uint64_t(7)));
    EXPECT_EQ(e.renderJson(),
              "{\"name\": \"outer\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": 3, \"ts\": 0.333, \"dur\": 2.500, "
              "\"args\": {\"v\": 7}}");
}

TEST(TraceJson, InstantEventCarriesThreadScope)
{
    TraceEvent e;
    e.name = "retry";
    e.ph = 'i';
    e.ts = 10.0;
    std::string json = e.renderJson();
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    EXPECT_EQ(json.find("\"dur\""), std::string::npos);
}

TEST(Trace, ProcessAndThreadMetadata)
{
    Trace t;
    int64_t a = t.process("compile");
    int64_t b = t.process("simulate P=4");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    t.thread(b, 2, "proc 2");
    std::string json = t.renderJson();
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Trace, RenderEventsFiltersByPid)
{
    Trace t;
    int64_t a = t.process("a");
    int64_t b = t.process("b");
    TraceEvent e;
    e.name = "only-a";
    e.pid = a;
    t.add(e);
    e.name = "only-b";
    e.pid = b;
    t.add(e);
    std::string ea = t.renderEvents(a);
    EXPECT_NE(ea.find("only-a"), std::string::npos);
    EXPECT_EQ(ea.find("only-b"), std::string::npos);
}

TEST(Metrics, CounterAccumulates)
{
    MetricsRegistry reg;
    reg.counter("x").add(3);
    reg.counter("x").add(4);
    EXPECT_EQ(reg.value("x"), 7u);
    EXPECT_EQ(reg.value("absent"), 0u);
    EXPECT_TRUE(reg.hasCounter("x"));
    EXPECT_FALSE(reg.hasCounter("absent"));
}

TEST(Metrics, HistogramBucketsByBitWidth)
{
    Histogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u); // value 0
    EXPECT_EQ(h.bucket(1), 1u); // value 1
    EXPECT_EQ(h.bucket(2), 2u); // values 2..3
    EXPECT_EQ(h.bucket(10), 1u); // 512..1023
}

TEST(Metrics, RenderJsonIsInsertionOrderedAndStable)
{
    MetricsRegistry reg;
    reg.counter("z.second").add(2);
    reg.counter("a.first").add(1);
    reg.histogram("h").record(5);
    std::string one = reg.renderJson();
    std::string two = reg.renderJson();
    EXPECT_EQ(one, two);
    // Insertion order, not lexicographic.
    EXPECT_LT(one.find("z.second"), one.find("a.first"));
    EXPECT_NE(one.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, EmptyRegistryRendersValidShell)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    std::string json = reg.renderJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, QuantileUpperBoundWalksBuckets)
{
    Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u); // empty

    // 100 samples of 1, 10 of 100, 1 of 5000: the p50 lands in the
    // value-1 bucket, the p99 in the 100s bucket (64..127 => upper
    // bound 127), and the max quantile is exact.
    for (int i = 0; i < 100; ++i)
        h.record(1);
    h.record(100, 10);
    h.record(5000);
    EXPECT_EQ(h.quantileUpperBound(0.5), 1u);
    EXPECT_EQ(h.quantileUpperBound(0.99), 127u);
    EXPECT_EQ(h.quantileUpperBound(1.0), h.max());
    EXPECT_EQ(h.quantileUpperBound(1.0), 5000u);

    // The bound never exceeds the tracked maximum, even when the
    // quantile falls in the top bucket.
    Histogram one;
    one.record(70);
    EXPECT_EQ(one.quantileUpperBound(0.01), 70u);
    EXPECT_EQ(one.quantileUpperBound(1.0), 70u);
}

TEST(Metrics, PrometheusExpositionGoldenOutput)
{
    // The exposition format is a compatibility contract like the
    // diagnostics JSON: field order, sanitized names, cumulative
    // buckets, and the mandatory +Inf/_sum/_count are pinned byte for
    // byte.
    MetricsRegistry reg;
    reg.counter("svc.requests").set(6);
    reg.counter("svc.validate.passed").set(3);
    Histogram &h = reg.histogram("svc.steps");
    h.record(1);  // bucket 1 (values of bit-width 1)
    h.record(2);  // bucket 2 (2..3)
    h.record(3);  // bucket 2
    h.record(82); // bucket 7 (64..127)
    EXPECT_EQ(reg.renderExposition(),
              "# TYPE svc_requests counter\n"
              "svc_requests 6\n"
              "# TYPE svc_validate_passed counter\n"
              "svc_validate_passed 3\n"
              "# TYPE svc_steps histogram\n"
              "svc_steps_bucket{le=\"1\"} 1\n"
              "svc_steps_bucket{le=\"3\"} 3\n"
              "svc_steps_bucket{le=\"127\"} 4\n"
              "svc_steps_bucket{le=\"+Inf\"} 4\n"
              "svc_steps_sum 88\n"
              "svc_steps_count 4\n");

    // Rendering is pure: a second call is byte-identical.
    EXPECT_EQ(reg.renderExposition(), reg.renderExposition());

    // Name sanitization: every character outside [a-zA-Z0-9_:] becomes
    // '_', and a leading digit is prefixed.
    MetricsRegistry odd;
    odd.counter("9lives-of a.cat").set(1);
    EXPECT_EQ(odd.renderExposition(), "# TYPE _9lives_of_a_cat counter\n"
                                      "_9lives_of_a_cat 1\n");
}

TEST(PhaseClockTest, RecordsPhasesWithTier)
{
    std::vector<PhaseTime> out;
    PhaseClock pc(&out, nullptr, 0);
    pc.setTier("full");
    {
        auto s = pc.phase("basis-matrix");
    }
    {
        auto s = pc.phase("emit");
    }
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].name, "basis-matrix");
    EXPECT_EQ(out[0].tier, "full");
    EXPECT_EQ(out[1].name, "emit");
    EXPECT_GE(out[0].us, 0.0);
}

TEST(PhaseClockTest, EmitsWallSpansWhenTraced)
{
    Trace t;
    int64_t pid = t.process("compile");
    std::vector<PhaseTime> out;
    PhaseClock pc(&out, &t, pid);
    pc.setTier("identity");
    {
        auto s = pc.phase("plan");
    }
    bool found = false;
    for (const TraceEvent &e : t.events())
        if (e.name == "plan" && e.ph == 'X' && e.pid == pid)
            found = true;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace anc::obs
