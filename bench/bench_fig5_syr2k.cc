/**
 * @file
 * Figure 5 reproduction: speedup of banded SYR2K on the modeled
 * Butterfly GP1000 for P = 1..28, three curves:
 *
 *   syr2k  -- original nest, outer loop round-robin
 *   syr2kT -- access-normalized, element-wise remote accesses
 *   syr2kB -- access-normalized with block transfers
 *
 * The transformed outer loop is u = j - i with 2b-1 iterations, so the
 * band width must exceed the processor count for full parallelism
 * (b = 64 gives 127 outer iterations, comfortably above the paper's
 * 28 processors). Block transfers matter much more than in GEMM because
 * four of six references stay remote after normalization -- the
 * paper's Section 8.2 observation, which the printed table shows as a
 * visibly larger T-to-B gap.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/compiler.h"
#include "deps/dependence.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

Int
benchN()
{
    return bench::fullScale() ? 400 : bench::envInt("ANC_BENCH_N", 128);
}

Int
benchB()
{
    return bench::fullScale() ? 100 : bench::envInt("ANC_BENCH_B", 64);
}

struct Fig5Data
{
    core::Compilation plain;
    core::Compilation normalized;
    double seqTime;
    Int n, b;
};

Fig5Data &
data()
{
    static Fig5Data d = [] {
        core::CompileOptions identity;
        identity.identityTransform = true;
        Fig5Data x{core::compile(ir::gallery::syr2kBanded(), identity),
                   core::compile(ir::gallery::syr2kBanded()), 0.0,
                   benchN(), benchB()};
        // Section 8.2's worked results: 5-row access matrix headed by
        // j - i, dependence (0,0,1), and a legal transformation whose
        // outer row normalizes Cb's distribution subscript.
        const auto &nr = x.normalized.normalization;
        if (nr.access.matrix.rows() != 5)
            throw InternalError("fig5: unexpected access matrix");
        if (nr.depMatrix.column(0) != IntVec{0, 0, 1})
            throw InternalError("fig5: unexpected dependence matrix");
        if (!deps::isLegalTransformation(nr.transform, nr.depMatrix))
            throw InternalError("fig5: illegal transformation");
        x.seqTime = core::sequentialTime(
            x.normalized, numa::MachineParams::butterflyGP1000(),
            {x.n, x.b});
        return x;
    }();
    return d;
}

struct Measured
{
    double speedup;
    double simTimeUs;
    double wallSeconds;
};

Measured
measure(const core::Compilation &c, Int p, bool blocks)
{
    numa::SimOptions opts;
    opts.processors = p;
    opts.blockTransfers = blocks;
    // Mild switch-contention term (Agarwal [1]): remote latency grows
    // with the number of processors sharing the network. Ablated in
    // bench_msgsize.
    opts.machine.contentionFactor = 0.01;
    bench::WallTimer timer;
    numa::SimStats s =
        core::simulate(c, opts, {{data().n, data().b}, {1.0, 1.0}});
    double wall = timer.seconds();
    return {s.speedup(data().seqTime), s.parallelTime(), wall};
}

double
speedupOf(const core::Compilation &c, Int p, bool blocks)
{
    return measure(c, p, blocks).speedup;
}

void
printFigure5()
{
    Fig5Data &d = data();
    std::printf("=== Figure 5: Speedup of banded SYR2K (N = %lld, "
                "b = %lld) ===\n",
                static_cast<long long>(d.n),
                static_cast<long long>(d.b));
    bench::printSpeedupHeader("speedup vs. processors",
                              {"syr2k", "syr2kT", "syr2kB"});
    bench::JsonReport report("fig5_syr2k");
    report.flag("N", d.n);
    report.flag("b", d.b);
    report.flag("full", bench::fullScale());
    report.flag("contentionFactor", 0.01);
    report.flag("sampled", false);
    for (Int p : bench::paperProcessorCounts()) {
        Measured plain = measure(d.plain, p, false);
        Measured norm_t = measure(d.normalized, p, false);
        Measured norm_b = measure(d.normalized, p, true);
        report.run("syr2k", p, plain.wallSeconds, plain.simTimeUs,
                   plain.speedup);
        report.run("syr2kT", p, norm_t.wallSeconds, norm_t.simTimeUs,
                   norm_t.speedup);
        report.run("syr2kB", p, norm_b.wallSeconds, norm_b.simTimeUs,
                   norm_b.speedup);
        bench::printSpeedupRow(
            p, {plain.speedup, norm_t.speedup, norm_b.speedup});
    }
    std::printf("\npaper shape: syr2k saturates lowest; block transfers "
                "matter more than in GEMM\n(many non-local accesses "
                "remain), so syr2kB rises clearly above syr2kT.\n\n");
    report.write();
}

void
BM_Fig5_SimulateSyr2kB(benchmark::State &state)
{
    Int p = state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(speedupOf(data().normalized, p, true));
}
BENCHMARK(BM_Fig5_SimulateSyr2kB)->Arg(4)->Arg(28)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig5_CompileSyr2k(benchmark::State &state)
{
    ir::Program p = ir::gallery::syr2kBanded();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::compile(p));
}
BENCHMARK(BM_Fig5_CompileSyr2k)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure5();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
