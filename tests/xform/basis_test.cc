/**
 * @file
 * Unit tests for Algorithms BasisMatrix and Padding.
 */

#include <gtest/gtest.h>

#include <random>

#include "../ratmath/test_util.h"
#include "ratmath/linalg.h"
#include "xform/basis.h"

namespace anc::xform {
namespace {

using testutil::randomIntMatrix;

TEST(BasisMatrixTest, PaperSection5Example)
{
    IntMatrix x{{1, 1, -1, 0}, {2, 2, -2, 0}, {0, 0, 1, -1}};
    BasisResult r = basisMatrix(x);
    EXPECT_EQ(r.rank(), 2u);
    EXPECT_EQ(r.keptRows, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(r.basis, (IntMatrix{{1, 1, -1, 0}, {0, 0, 1, -1}}));
    // The paper's permutation puts rows 1 and 3 first.
    IntMatrix p = r.permutation(3);
    EXPECT_EQ(p, (IntMatrix{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}));
    EXPECT_TRUE(isUnimodular(p));
}

TEST(BasisMatrixTest, FullRankKeepsEverything)
{
    IntMatrix x{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
    BasisResult r = basisMatrix(x);
    EXPECT_EQ(r.rank(), 3u);
    EXPECT_EQ(r.basis, x);
}

TEST(BasisMatrixTest, ImportanceOrderRespected)
{
    // The first of two dependent rows wins regardless of magnitude.
    IntMatrix x{{2, 2}, {1, 1}, {0, 1}};
    BasisResult r = basisMatrix(x);
    EXPECT_EQ(r.keptRows, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(r.basis.row(0), (IntVec{2, 2}));
}

TEST(PaddingTest, PaperSection52Example)
{
    // Basis rows i+j-k and k-l: columns 1 and 3 are the pivots, so the
    // padding selects identity rows e2 and e4.
    IntMatrix b{{1, 1, -1, 0}, {0, 0, 1, -1}};
    IntMatrix h = paddingMatrix(b);
    EXPECT_EQ(h, (IntMatrix{{0, 1, 0, 0}, {0, 0, 0, 1}}));
    IntMatrix t = padToInvertible(b);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_NE(determinant(t), 0);
    EXPECT_EQ(t.row(0), (IntVec{1, 1, -1, 0}));
    EXPECT_EQ(t.row(2), (IntVec{0, 1, 0, 0}));
}

TEST(PaddingTest, EmptyBasisGivesIdentity)
{
    IntMatrix empty(0, 3);
    EXPECT_EQ(padToInvertible(empty), IntMatrix::identity(3));
}

TEST(PaddingTest, SquareBasisNeedsNoPadding)
{
    IntMatrix b{{0, 1}, {1, 0}};
    EXPECT_EQ(paddingMatrix(b).rows(), 0u);
    EXPECT_EQ(padToInvertible(b), b);
}

TEST(PaddingTest, RankDeficientInputRejected)
{
    IntMatrix bad{{1, 1}, {2, 2}};
    EXPECT_THROW(paddingMatrix(bad), InternalError);
}

TEST(PaddingTest, RandomizedInvertibility)
{
    std::mt19937 rng(777);
    for (int trial = 0; trial < 80; ++trial) {
        size_t n = 2 + trial % 4;
        size_t m = 1 + size_t(trial) % n;
        IntMatrix raw = randomIntMatrix(rng, m, n, -3, 3);
        BasisResult br = basisMatrix(raw);
        if (br.rank() == 0)
            continue;
        IntMatrix t = padToInvertible(br.basis);
        EXPECT_EQ(t.rows(), n);
        EXPECT_NE(determinant(t), 0);
        // The basis rows appear unchanged at the top.
        for (size_t i = 0; i < br.rank(); ++i)
            EXPECT_EQ(t.row(i), br.basis.row(i));
        // Padding rows are identity rows.
        for (size_t i = br.rank(); i < n; ++i) {
            Int sum = 0;
            for (size_t j = 0; j < n; ++j) {
                EXPECT_GE(t(i, j), 0);
                sum += t(i, j);
            }
            EXPECT_EQ(sum, 1);
        }
    }
}

} // namespace
} // namespace anc::xform
