/**
 * @file
 * Sequential interpreter for Program IR.
 *
 * Gives the IR executable semantics: it walks the iteration space in
 * lexicographic order, evaluates bounds exactly (ceil of the max lower
 * bound, floor of the min upper bound), and executes the body against
 * dense double storage. A trace callback observes every array access in
 * program order; the transformation engine's correctness tests compare
 * these traces before and after restructuring.
 */

#ifndef ANC_IR_INTERP_H
#define ANC_IR_INTERP_H

#include <cstdint>
#include <functional>

#include "ir/loop_nest.h"

namespace anc::ir {

/** Runtime bindings for a program's symbols. */
struct Bindings
{
    IntVec paramValues;               //!< one per Program::params
    std::vector<double> scalarValues; //!< one per Program::scalars
};

/** Dense storage for every array of a program. */
class ArrayStorage
{
  public:
    ArrayStorage(const Program &prog, const IntVec &param_values);

    /** Element access with bounds checking. */
    double &at(size_t array_id, const IntVec &subs);
    double at(size_t array_id, const IntVec &subs) const;

    /** Row-major flat offset of an element; throws UserError if any
     * subscript is out of range. */
    size_t flatten(size_t array_id, const IntVec &subs) const;

    /** Concrete extents of an array. */
    const IntVec &extents(size_t array_id) const
    {
        return extents_[array_id];
    }

    /** Flat data of an array (e.g. to compare interpreter runs). */
    std::vector<double> &data(size_t array_id) { return data_[array_id]; }
    const std::vector<double> &
    data(size_t array_id) const
    {
        return data_[array_id];
    }

    size_t numArrays() const { return data_.size(); }

    /** Fill every array with a deterministic pseudo-random pattern so
     * that before/after comparisons are meaningful. */
    void fillDeterministic(uint64_t seed = 1);

  private:
    std::vector<IntVec> extents_;
    std::vector<std::vector<double>> data_;
    std::vector<std::string> names_;
};

/**
 * An affine subscript compiled to pure integer arithmetic against fixed
 * parameter bindings:
 *
 *   value(u) = (num . u + cst) / den
 *
 * Parameters and the constant are folded into cst, and all coefficients
 * are scaled by the common denominator den (1 for integer-coefficient
 * source subscripts; the inverse-transform rows of restructured nests
 * introduce rationals that are integral at every lattice point).
 *
 * Besides plain evaluation this carries the strength-reduction data the
 * simulator's hot loop needs: stepDelta gives the exact change in value
 * when one loop variable advances by its stride, so innermost iterations
 * can update subscript values incrementally instead of re-evaluating the
 * dot product.
 */
struct CompiledAffine
{
    IntVec num;  //!< scaled variable coefficients
    Int cst = 0; //!< parameters and constant, folded and scaled
    Int den = 1; //!< common denominator

    /** Compile e against concrete parameter values. */
    static CompiledAffine compile(const AffineExpr &e, const IntVec &params);

    /** Exact value at the point u; throws InternalError if the rational
     * value is not integral there. */
    Int eval(const IntVec &u) const;

    /**
     * Exact integer change in value when variable k advances by stride
     * with deeper variables unchanged. Returns false when the change is
     * not an integer (the caller must re-evaluate at each point); this
     * cannot happen between two consecutive enumerated lattice points,
     * but callers stay defensive.
     */
    bool stepDelta(size_t k, Int stride, Int *delta) const;

    /** True if variable k has a nonzero coefficient. */
    bool
    dependsOnVar(size_t k) const
    {
        return k < num.size() && num[k] != 0;
    }
};

/** One observed array access, reported in execution order. */
struct AccessEvent
{
    size_t arrayId;
    IntVec subscript;
    bool isWrite;
};

using TraceFn = std::function<void(const AccessEvent &)>;

/** Evaluate the concrete lower bound of a loop (ceil of max). */
Int loopLowerBound(const Loop &l, const IntVec &vars, const IntVec &params);

/** Evaluate the concrete upper bound of a loop (floor of min). */
Int loopUpperBound(const Loop &l, const IntVec &vars, const IntVec &params);

/**
 * Walk the nest's iteration space in lexicographic order, calling fn
 * with the full index vector of each iteration. Returns the number of
 * iterations visited.
 */
uint64_t forEachIteration(const LoopNest &nest, const IntVec &params,
                          const std::function<void(const IntVec &)> &fn);

/** Evaluate an rhs expression at one iteration point. */
double evalExpr(const Expr &e, const IntVec &vars, const Bindings &binds,
                const ArrayStorage &store, const TraceFn &trace);

/** Execute one statement at one iteration point. */
void execStatement(const Statement &s, const IntVec &vars,
                   const Bindings &binds, ArrayStorage &store,
                   const TraceFn &trace);

/**
 * Run a whole program sequentially. Returns the iteration count.
 * The trace callback, when given, sees every access (write after reads
 * within a statement, statements in body order).
 */
uint64_t run(const Program &prog, const Bindings &binds,
             ArrayStorage &store, const TraceFn &trace = nullptr);

} // namespace anc::ir

#endif // ANC_IR_INTERP_H
