# Empty dependencies file for vector_stride.
# This may be replaced when dependencies are built.
