file(REMOVE_RECURSE
  "libanc_codegen.a"
)
