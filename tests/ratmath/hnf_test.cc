/**
 * @file
 * Unit and property tests for Hermite normal forms.
 */

#include <gtest/gtest.h>

#include <random>

#include "ratmath/hnf.h"
#include "ratmath/linalg.h"
#include "test_util.h"

namespace anc {
namespace {

using testutil::randomIntMatrix;
using testutil::randomInvertibleMatrix;

/** Check the column-echelon shape invariants documented in hnf.h. */
void
expectColumnEchelon(const ColumnHNF &c, const IntMatrix &a)
{
    const IntMatrix &h = c.h;
    // A * U == H and U unimodular.
    EXPECT_EQ(a * c.u, h);
    EXPECT_TRUE(isUnimodular(c.u));
    EXPECT_EQ(c.rank(), rank(a));
    // Pivot rows strictly increase; pivots positive; zeros above pivots;
    // entries left of a pivot in its row lie in [0, pivot).
    size_t prev = 0;
    bool first = true;
    for (size_t k = 0; k < c.rank(); ++k) {
        size_t pr = c.pivotRows[k];
        if (!first) {
            EXPECT_GT(pr, prev);
        }
        first = false;
        prev = pr;
        EXPECT_GT(h(pr, k), 0);
        for (size_t i = 0; i < pr; ++i)
            EXPECT_EQ(h(i, k), 0);
        for (size_t j = 0; j < k; ++j) {
            EXPECT_GE(h(pr, j), 0);
            EXPECT_LT(h(pr, j), h(pr, k));
        }
    }
    // Columns beyond the rank are zero.
    for (size_t k = c.rank(); k < h.cols(); ++k)
        for (size_t i = 0; i < h.rows(); ++i)
            EXPECT_EQ(h(i, k), 0);
}

TEST(ColumnHNFTest, Identity)
{
    IntMatrix id = IntMatrix::identity(3);
    ColumnHNF c = columnHNF(id);
    EXPECT_EQ(c.h, id);
    EXPECT_EQ(c.u, id);
    EXPECT_EQ(c.rank(), 3u);
}

TEST(ColumnHNFTest, PaperScalingExample)
{
    // Loop scaling by 2 (Section 3): T = [2]; lattice 2Z, stride 2.
    IntMatrix t{{2}};
    ColumnHNF c = columnHNF(t);
    EXPECT_EQ(c.h(0, 0), 2);
}

TEST(ColumnHNFTest, PaperSection3Matrix)
{
    // T = [[2, 4], [1, 5]], det 6: H must be lower triangular with
    // positive diagonal whose product is 6.
    IntMatrix t{{2, 4}, {1, 5}};
    ColumnHNF c = columnHNF(t);
    expectColumnEchelon(c, t);
    EXPECT_EQ(c.h(0, 1), 0);
    EXPECT_EQ(c.h(0, 0) * c.h(1, 1), 6);
}

TEST(ColumnHNFTest, NegativePivotsNormalized)
{
    IntMatrix t{{-3, 0}, {1, -2}};
    ColumnHNF c = columnHNF(t);
    expectColumnEchelon(c, t);
    EXPECT_GT(c.h(0, 0), 0);
    EXPECT_GT(c.h(1, 1), 0);
}

TEST(ColumnHNFTest, RankDeficient)
{
    IntMatrix a{{1, 2, 3}, {2, 4, 6}};
    ColumnHNF c = columnHNF(a);
    expectColumnEchelon(c, a);
    EXPECT_EQ(c.rank(), 1u);
}

TEST(ColumnHNFTest, ZeroMatrix)
{
    IntMatrix z(2, 3);
    ColumnHNF c = columnHNF(z);
    EXPECT_EQ(c.rank(), 0u);
    EXPECT_EQ(c.h, z);
    EXPECT_TRUE(isUnimodular(c.u));
}

TEST(ColumnHNFTest, WideAndTallMatrices)
{
    IntMatrix wide{{0, 2, 4, 1}, {3, 1, 0, 2}};
    expectColumnEchelon(columnHNF(wide), wide);
    IntMatrix tall{{2, 1}, {4, 3}, {6, 5}, {0, 1}};
    expectColumnEchelon(columnHNF(tall), tall);
}

TEST(ColumnHNFTest, RandomizedProperty)
{
    std::mt19937 rng(4242);
    for (int trial = 0; trial < 120; ++trial) {
        size_t m = 1 + trial % 5, n = 1 + (trial / 5) % 5;
        IntMatrix a = randomIntMatrix(rng, m, n, -6, 6);
        expectColumnEchelon(columnHNF(a), a);
    }
}

TEST(ColumnHNFTest, SquareNonsingularIsLowerTriangular)
{
    std::mt19937 rng(31);
    for (int trial = 0; trial < 60; ++trial) {
        size_t n = 1 + trial % 5;
        IntMatrix a = randomInvertibleMatrix(rng, n);
        ColumnHNF c = columnHNF(a);
        Int diag = 1;
        for (size_t i = 0; i < n; ++i) {
            EXPECT_GT(c.h(i, i), 0);
            diag = checkedMul(diag, c.h(i, i));
            for (size_t j = i + 1; j < n; ++j)
                EXPECT_EQ(c.h(i, j), 0);
        }
        Int det = determinant(a);
        EXPECT_EQ(diag, det < 0 ? -det : det);
    }
}

TEST(RowHNFTest, TransposeDuality)
{
    IntMatrix a{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}};
    RowHNF r = rowHNF(a);
    EXPECT_EQ(r.u * a, r.h);
    EXPECT_TRUE(isUnimodular(r.u));
    EXPECT_EQ(r.rank(), rank(a));
    // Row echelon shape: pivots positive, strictly increasing columns,
    // zeros to the left of each pivot in its row.
    for (size_t k = 0; k < r.rank(); ++k) {
        size_t pc = r.pivotCols[k];
        EXPECT_GT(r.h(k, pc), 0);
        for (size_t j = 0; j < pc; ++j)
            EXPECT_EQ(r.h(k, j), 0);
        for (size_t i = 0; i < k; ++i) {
            EXPECT_GE(r.h(i, pc), 0);
            EXPECT_LT(r.h(i, pc), r.h(k, pc));
        }
    }
}

TEST(RowHNFTest, RandomizedProperty)
{
    std::mt19937 rng(77);
    for (int trial = 0; trial < 60; ++trial) {
        size_t m = 1 + trial % 4, n = 1 + (trial / 4) % 4;
        IntMatrix a = randomIntMatrix(rng, m, n, -5, 5);
        RowHNF r = rowHNF(a);
        EXPECT_EQ(r.u * a, r.h);
        EXPECT_TRUE(isUnimodular(r.u));
        EXPECT_EQ(r.rank(), rank(a));
    }
}

} // namespace
} // namespace anc
