#include "dsl/parser.h"

#include <map>

#include "dsl/lexer.h"

namespace anc::dsl {

namespace {

using ir::AffineExpr;
using ir::Expr;

class Parser
{
  public:
    explicit Parser(const std::string &source)
        : toks_(tokenize(source))
    {
        // Pre-scan: the nest depth fixes the shape of every affine
        // expression before any bound is parsed.
        for (const Token &t : toks_)
            if (t.kind == Tok::KwFor)
                ++depth_;
    }

    ir::Program
    parse()
    {
        parseDecls();
        if (depth_ == 0)
            fail("program has no loop nest");
        while (at(Tok::KwFor))
            parseForLine();
        if (!at(Tok::Ident))
            fail("expected a statement after the loop headers");
        while (at(Tok::Ident))
            parseStatement();
        expect(Tok::End);
        prog_.validate();
        return prog_;
    }

    ParseResult
    parseRecovering(size_t max_errors)
    {
        ParseResult out;
        while (!at(Tok::End) && out.diagnostics.size() < max_errors) {
            try {
                if (at(Tok::KwParam) || at(Tok::KwScalar) ||
                    at(Tok::KwArray))
                    parseOneDecl();
                else if (at(Tok::KwFor))
                    parseForLine();
                else if (at(Tok::Ident))
                    parseStatement();
                else
                    fail("expected a declaration, loop header, or "
                         "statement");
            } catch (const UserError &e) {
                out.diagnostics.push_back(
                    {cur().line, stripLinePrefix(e.what())});
                syncToNextUnit();
            }
        }
        if (!at(Tok::End))
            out.diagnostics.push_back(
                {cur().line, "too many errors; giving up"});
        else if (depth_ == 0)
            out.diagnostics.push_back(
                {cur().line, "program has no loop nest"});
        try {
            if (prog_.nest.body().empty())
                throw UserError("program has no statements");
            prog_.validate();
            out.program = std::move(prog_);
        } catch (const UserError &e) {
            // Whatever survived recovery is not a whole program; keep
            // the cause only when no earlier error explains it.
            if (out.diagnostics.empty())
                out.diagnostics.push_back({-1, e.what()});
        }
        return out;
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;
    size_t depth_ = 0;
    ir::Program prog_;
    std::map<std::string, size_t> params_, scalars_, arrays_, vars_;

    const Token &cur() const { return toks_[pos_]; }
    bool at(Tok t) const { return cur().kind == t; }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw UserError("line " + std::to_string(cur().line) + ": " + msg);
    }

    Token
    expect(Tok t)
    {
        if (!at(t))
            fail("expected " + tokName(t) + ", found " +
                 tokName(cur().kind) +
                 (cur().text.empty() ? "" : " '" + cur().text + "'"));
        return toks_[pos_++];
    }

    bool
    accept(Tok t)
    {
        if (!at(t)) {
            return false;
        }
        ++pos_;
        return true;
    }

    void
    declareName(const std::string &name)
    {
        if (params_.count(name) || scalars_.count(name) ||
            arrays_.count(name) || vars_.count(name))
            fail("name '" + name + "' is already declared");
    }

    // --- error recovery --------------------------------------------

    /** "line 12: expected ..." -> "expected ..." (the line is carried
     * separately in ParseDiagnostic). */
    static std::string
    stripLinePrefix(const std::string &msg)
    {
        if (msg.rfind("line ", 0) == 0) {
            size_t colon = msg.find(": ");
            if (colon != std::string::npos)
                return msg.substr(colon + 2);
        }
        return msg;
    }

    /** Skip to the first token on a later line that can start a new
     * unit (declaration keyword, 'for', or an identifier). */
    void
    syncToNextUnit()
    {
        int err_line = cur().line;
        if (!at(Tok::End))
            ++pos_;
        while (!at(Tok::End)) {
            if (cur().line > err_line &&
                (at(Tok::KwFor) || at(Tok::KwParam) || at(Tok::KwScalar) ||
                 at(Tok::KwArray) || at(Tok::Ident)))
                return;
            ++pos_;
        }
    }

    // --- declarations ----------------------------------------------

    void
    parseDecls()
    {
        while (at(Tok::KwParam) || at(Tok::KwScalar) || at(Tok::KwArray))
            parseOneDecl();
    }

    void
    parseOneDecl()
    {
        if (accept(Tok::KwParam)) {
            do {
                Token t = expect(Tok::Ident);
                declareName(t.text);
                params_[t.text] = prog_.params.size();
                prog_.params.push_back(t.text);
            } while (accept(Tok::Comma));
        } else if (accept(Tok::KwScalar)) {
            do {
                Token t = expect(Tok::Ident);
                declareName(t.text);
                scalars_[t.text] = prog_.scalars.size();
                prog_.scalars.push_back(t.text);
            } while (accept(Tok::Comma));
        } else {
            expect(Tok::KwArray);
            parseArrayDecl();
        }
    }

    void
    parseArrayDecl()
    {
        Token name = expect(Tok::Ident);
        declareName(name.text);
        ir::ArrayDecl decl;
        decl.name = name.text;
        expect(Tok::LParen);
        do {
            AffineExpr e = parseAffine(/*num_vars=*/0);
            decl.extents.push_back(std::move(e));
        } while (accept(Tok::Comma));
        expect(Tok::RParen);
        if (accept(Tok::KwDistribute))
            decl.dist = parseDist(decl.extents.size());
        arrays_[decl.name] = prog_.arrays.size();
        prog_.arrays.push_back(std::move(decl));
    }

    ir::DistributionSpec
    parseDist(size_t ndims)
    {
        auto dim_arg = [&]() {
            expect(Tok::LParen);
            Token d = expect(Tok::Integer);
            if (d.intValue < 0 || size_t(d.intValue) >= ndims)
                fail("distribution dimension out of range");
            return size_t(d.intValue);
        };
        if (accept(Tok::KwReplicated))
            return ir::DistributionSpec::replicated();
        if (accept(Tok::KwWrapped)) {
            size_t d = dim_arg();
            expect(Tok::RParen);
            return ir::DistributionSpec::wrapped(d);
        }
        if (accept(Tok::KwBlocked)) {
            size_t d = dim_arg();
            expect(Tok::RParen);
            return ir::DistributionSpec::blocked(d);
        }
        if (accept(Tok::KwBlock2d)) {
            size_t d0 = dim_arg();
            expect(Tok::Comma);
            Token d1 = expect(Tok::Integer);
            if (d1.intValue < 0 || size_t(d1.intValue) >= ndims)
                fail("distribution dimension out of range");
            expect(Tok::RParen);
            return ir::DistributionSpec::block2d(d0, size_t(d1.intValue));
        }
        fail("expected a distribution kind");
    }

    // --- loops -----------------------------------------------------

    void
    parseForLine()
    {
        expect(Tok::KwFor);
        Token var = expect(Tok::Ident);
        declareName(var.text);
        ir::Loop loop;
        loop.var = var.text;
        size_t level = prog_.nest.depth();
        expect(Tok::Assign);
        if (accept(Tok::KwMax)) {
            expect(Tok::LParen);
            do
                loop.lower.push_back(parseAffine(depth_));
            while (accept(Tok::Comma));
            expect(Tok::RParen);
        } else {
            loop.lower.push_back(parseAffine(depth_));
        }
        expect(Tok::Comma);
        if (accept(Tok::KwMin)) {
            expect(Tok::LParen);
            do
                loop.upper.push_back(parseAffine(depth_));
            while (accept(Tok::Comma));
            expect(Tok::RParen);
        } else {
            loop.upper.push_back(parseAffine(depth_));
        }
        vars_[loop.var] = level;
        prog_.nest.loops().push_back(std::move(loop));
    }

    // --- affine expressions ----------------------------------------

    AffineExpr
    parseAffine(size_t num_vars)
    {
        return parseAffineSum(num_vars);
    }

    AffineExpr
    parseAffineSum(size_t num_vars)
    {
        AffineExpr acc = parseAffineProduct(num_vars);
        while (at(Tok::Plus) || at(Tok::Minus)) {
            bool add = accept(Tok::Plus);
            if (!add)
                expect(Tok::Minus);
            AffineExpr rhs = parseAffineProduct(num_vars);
            acc = add ? acc + rhs : acc - rhs;
        }
        return acc;
    }

    AffineExpr
    parseAffineProduct(size_t num_vars)
    {
        AffineExpr acc = parseAffineUnary(num_vars);
        while (at(Tok::Star) || at(Tok::Slash)) {
            bool mul = accept(Tok::Star);
            if (!mul)
                expect(Tok::Slash);
            AffineExpr rhs = parseAffineUnary(num_vars);
            if (mul) {
                if (rhs.isConstant())
                    acc = acc.scaled(rhs.constantTerm());
                else if (acc.isConstant())
                    acc = rhs.scaled(acc.constantTerm());
                else
                    fail("non-affine product (both factors are symbolic)");
            } else {
                if (!rhs.isConstant())
                    fail("division by a symbolic expression");
                if (rhs.constantTerm().isZero())
                    fail("division by zero");
                acc = acc.scaled(rhs.constantTerm().inverse());
            }
        }
        return acc;
    }

    AffineExpr
    parseAffineUnary(size_t num_vars)
    {
        if (accept(Tok::Minus))
            return -parseAffineUnary(num_vars);
        if (at(Tok::Integer)) {
            Token t = toks_[pos_++];
            return AffineExpr::constant(Rational(t.intValue), num_vars,
                                        prog_.params.size());
        }
        if (accept(Tok::LParen)) {
            AffineExpr e = parseAffineSum(num_vars);
            expect(Tok::RParen);
            return e;
        }
        if (at(Tok::Ident)) {
            Token t = toks_[pos_++];
            auto v = vars_.find(t.text);
            if (v != vars_.end()) {
                if (num_vars == 0)
                    fail("loop variable '" + t.text +
                         "' is not allowed here");
                return AffineExpr::variable(v->second, num_vars,
                                            prog_.params.size());
            }
            auto p = params_.find(t.text);
            if (p != params_.end())
                return AffineExpr::parameter(p->second, num_vars,
                                             prog_.params.size());
            fail("unknown identifier '" + t.text +
                 "' in an affine expression");
        }
        fail("expected an affine expression");
    }

    // --- statements ------------------------------------------------

    ir::ArrayRef
    parseRef(const std::string &name)
    {
        auto it = arrays_.find(name);
        if (it == arrays_.end())
            fail("unknown array '" + name + "'");
        ir::ArrayRef ref;
        ref.arrayId = it->second;
        expect(Tok::LBracket);
        do
            ref.subscripts.push_back(parseAffine(depth_));
        while (accept(Tok::Comma));
        expect(Tok::RBracket);
        return ref;
    }

    void
    parseStatement()
    {
        Token name = expect(Tok::Ident);
        if (!arrays_.count(name.text))
            fail("statement must assign to an array element");
        ir::ArrayRef lhs = parseRef(name.text);
        expect(Tok::Assign);
        Expr rhs = parseExpr();
        prog_.nest.body().push_back({std::move(lhs), std::move(rhs)});
    }

    Expr
    parseExpr()
    {
        Expr acc = parseTerm();
        while (at(Tok::Plus) || at(Tok::Minus)) {
            char op = accept(Tok::Plus) ? '+' : (expect(Tok::Minus), '-');
            acc = Expr::binary(op, std::move(acc), parseTerm());
        }
        return acc;
    }

    Expr
    parseTerm()
    {
        Expr acc = parseFactor();
        while (at(Tok::Star) || at(Tok::Slash)) {
            char op = accept(Tok::Star) ? '*' : (expect(Tok::Slash), '/');
            acc = Expr::binary(op, std::move(acc), parseFactor());
        }
        return acc;
    }

    Expr
    parseFactor()
    {
        if (accept(Tok::Minus))
            return Expr::binary('-', Expr::number_(0.0), parseFactor());
        if (at(Tok::Float)) {
            Token t = toks_[pos_++];
            return Expr::number_(t.floatValue);
        }
        if (at(Tok::Integer)) {
            Token t = toks_[pos_++];
            return Expr::number_(double(t.intValue));
        }
        if (accept(Tok::LParen)) {
            Expr e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        if (at(Tok::Ident)) {
            Token t = toks_[pos_++];
            if (arrays_.count(t.text))
                return Expr::arrayRead(parseRef(t.text));
            auto s = scalars_.find(t.text);
            if (s != scalars_.end())
                return Expr::scalar(s->second);
            auto v = vars_.find(t.text);
            if (v != vars_.end()) {
                return Expr::indexValue(AffineExpr::variable(
                    v->second, depth_, prog_.params.size()));
            }
            auto p = params_.find(t.text);
            if (p != params_.end()) {
                return Expr::indexValue(AffineExpr::parameter(
                    p->second, depth_, prog_.params.size()));
            }
            fail("unknown identifier '" + t.text + "' in expression");
        }
        fail("expected an expression");
    }
};

} // namespace

ir::Program
parseProgram(const std::string &source)
{
    return Parser(source).parse();
}

ParseResult
parseProgramRecovering(const std::string &source, size_t max_errors)
{
    return Parser(source).parseRecovering(max_errors);
}

} // namespace anc::dsl
