file(REMOVE_RECURSE
  "CMakeFiles/hnf_property_test.dir/hnf_property_test.cc.o"
  "CMakeFiles/hnf_property_test.dir/hnf_property_test.cc.o.d"
  "hnf_property_test"
  "hnf_property_test.pdb"
  "hnf_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
