/**
 * @file
 * Property tests for the symbolic prover, differential against the
 * point-by-point enumeration oracle. The contract under test: on every
 * program whose iteration space is small enough to enumerate, the
 * symbolic verdict (computed with parameters as free symbols, never
 * looking at a single concrete point) must agree with the oracle --
 * both on clean compilations (everything passes) and on deliberately
 * miscompiled plans (both sides must refuse). Where the two disagree
 * by design -- the oracle has no dependence-preservation check -- the
 * test pins down that the symbolic layer is strictly stronger.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/compiler.h"
#include "deps/dependence.h"
#include "ir/builder.h"
#include "ir/gallery.h"
#include "ir/interp.h"
#include "verify/symbolic.h"
#include "verify/verify.h"
#include "xform/transform.h"

namespace anc::verify {
namespace {

Rational
rat(Int n, Int d = 1)
{
    return Rational(n, d);
}

SymConstraint
con(IntVec var, IntVec param, Int cst, std::string origin)
{
    SymConstraint c;
    c.var = std::move(var);
    c.param = std::move(param);
    c.cst = cst;
    c.origin = std::move(origin);
    return c;
}

const CheckResult &
check(const ValidationReport &r, CheckKind kind)
{
    for (const CheckResult &c : r.checks)
        if (c.kind == kind)
            return c;
    throw std::logic_error("check kind missing from report");
}

/** Rebuild a nest with mutated loops/body through the public ctor. */
xform::TransformedNest
rebuild(const xform::TransformedNest &nest,
        std::vector<xform::TransformedLoop> loops,
        std::vector<ir::Statement> body)
{
    return xform::TransformedNest(nest.transform(),
                                  nest.inverseTransform(), nest.lattice(),
                                  std::move(loops), std::move(body),
                                  nest.paramConditions());
}

ValidateOptions
symbolicOnly()
{
    ValidateOptions o;
    o.crossCheck = false;
    return o;
}

TEST(SymbolicTest, ProverProvesAndRefutesBoxImplications)
{
    // {x >= 0, 4 - x >= 0}: the goal 6 - x >= 0 is a consequence, the
    // goal x - 1 >= 0 is not (x = 0 violates it).
    std::vector<SymConstraint> sys = {con({1}, {}, 0, "x >= 0"),
                                      con({-1}, {}, 4, "x <= 4")};
    ProofResult ok = proveImplies(sys, con({-1}, {}, 6, "x <= 6"));
    EXPECT_EQ(ok.status, ProofStatus::Proven) << ok.note;

    SymConstraint goal = con({1}, {}, -1, "x >= 1");
    ProofResult bad = proveImplies(sys, goal);
    ASSERT_EQ(bad.status, ProofStatus::Refuted) << bad.note;
    ASSERT_EQ(bad.witnessVars.size(), 1u);
    // The witness must actually satisfy the system and violate the
    // goal -- the prover's report is checkable, not just an opinion.
    for (const SymConstraint &c : sys)
        EXPECT_GE(c.evaluate(bad.witnessVars, bad.witnessParams), 0)
            << c.origin;
    EXPECT_LT(goal.evaluate(bad.witnessVars, bad.witnessParams), 0);
}

TEST(SymbolicTest, ProverCoversEveryParameterValue)
{
    // {x >= 0, x <= N - 1} implies 2N - x - 1 >= 0 for EVERY integer N
    // (a nonempty system forces N >= 1). The converse goal x >= N is
    // refutable, and the witness must name the parameter binding.
    std::vector<SymConstraint> sys = {con({1}, {0}, 0, "x >= 0"),
                                      con({-1}, {1}, -1, "x <= N-1")};
    ProofResult ok =
        proveImplies(sys, con({-1}, {2}, -1, "x <= 2N - 1"));
    EXPECT_EQ(ok.status, ProofStatus::Proven) << ok.note;

    SymConstraint goal = con({1}, {-1}, 0, "x >= N");
    ProofResult bad = proveImplies(sys, goal);
    ASSERT_EQ(bad.status, ProofStatus::Refuted) << bad.note;
    ASSERT_EQ(bad.witnessVars.size(), 1u);
    ASSERT_EQ(bad.witnessParams.size(), 1u);
    for (const SymConstraint &c : sys)
        EXPECT_GE(c.evaluate(bad.witnessVars, bad.witnessParams), 0)
            << c.origin;
    EXPECT_LT(goal.evaluate(bad.witnessVars, bad.witnessParams), 0);
}

TEST(SymbolicTest, GalleryVerdictsAgreeWithTheEnumerationOracle)
{
    // Every gallery kernel: the symbolic-only verdict (no enumeration
    // anywhere in the decision) and the independent point-by-point
    // oracle must both come back clean.
    using ir::Program;
    const std::pair<const char *, Program (*)()> kernels[] = {
        {"figure1", ir::gallery::figure1},
        {"section3Example", ir::gallery::section3Example},
        {"scalingExample", ir::gallery::scalingExample},
        {"section5Example", ir::gallery::section5Example},
        {"gemm", ir::gallery::gemm},
        {"gemv", ir::gallery::gemv},
        {"ger", ir::gallery::ger},
        {"jacobi2d", ir::gallery::jacobi2d},
        {"gaussSeidel", ir::gallery::gaussSeidel},
        {"syr2kBanded", ir::gallery::syr2kBanded},
    };
    int oracle_feasible = 0;
    for (const auto &[name, make] : kernels) {
        SCOPED_TRACE(name);
        core::Compilation c = core::compile(make());
        ValidationReport r =
            validate(c.program, c.nest(), c.normalization.depMatrix,
                     symbolicOnly());
        EXPECT_TRUE(r.passed()) << r.render();
        for (const CheckResult &cr : r.checks)
            EXPECT_EQ(cr.method, CheckMethod::Symbolic)
                << checkName(cr.kind);

        EnumerationOracle o = enumerationOracle(c.program, c.nest());
        if (!o.feasible)
            continue;
        ++oracle_feasible;
        EXPECT_TRUE(o.latticeOk) << o.latticeDetail;
        EXPECT_TRUE(o.orderOk) << o.orderDetail;
        if (o.differentialRan)
            EXPECT_TRUE(o.differentialOk) << o.differentialDetail;
        EXPECT_EQ(r.passed(), o.allOk());
    }
    // The gallery kernels all have small feasible bindings.
    EXPECT_EQ(oracle_feasible, 10);
}

TEST(SymbolicTest, SymbolicTripCountsMatchEnumeration)
{
    // Where a polynomial closed form exists it must count exactly what
    // the interpreter enumerates, at several parameter bindings; the
    // banded SYR2K (min/max bounds) must honestly decline.
    using ir::Program;
    const std::pair<const char *, Program (*)()> closed[] = {
        {"figure1", ir::gallery::figure1},
        {"section3Example", ir::gallery::section3Example},
        {"scalingExample", ir::gallery::scalingExample},
        {"section5Example", ir::gallery::section5Example},
        {"gemm", ir::gallery::gemm},
        {"gemv", ir::gallery::gemv},
        {"ger", ir::gallery::ger},
        {"jacobi2d", ir::gallery::jacobi2d},
        {"gaussSeidel", ir::gallery::gaussSeidel},
    };
    for (const auto &[name, make] : closed) {
        SCOPED_TRACE(name);
        ir::Program prog = make();
        std::optional<Polynomial> tc = symbolicTripCount(prog);
        ASSERT_TRUE(tc.has_value());
        size_t m = prog.params.size();
        for (Int v : {3, 4, 6}) {
            IntVec binding(m, v);
            uint64_t count = ir::forEachIteration(
                prog.nest, binding, [](const IntVec &) {});
            RatVec at(m, rat(v));
            EXPECT_EQ(tc->evaluate(at), rat(Int(count)))
                << "params=" << v << " poly " << tc->str(prog.params);
        }
    }
    EXPECT_FALSE(
        symbolicTripCount(ir::gallery::syr2kBanded()).has_value());
}

/**
 * A compact copy of the integration fuzzer's program generator:
 * concrete bounds 3..6 keep every space enumerable, 2-D arrays X and Y
 * get extents computed so all subscripts stay in range, loops are box
 * or triangular, and the statement X[s] = X[s'] + Y[t] with a 0/1
 * shift creates constant-distance dependences.
 */
ir::Program
generate(std::mt19937 &rng, size_t depth)
{
    std::uniform_int_distribution<Int> extent(3, 6);
    std::uniform_int_distribution<Int> coef(-1, 1);
    std::uniform_int_distribution<Int> shift(0, 1);
    std::uniform_int_distribution<int> kind(0, 2);

    IntVec hi(depth);
    for (size_t k = 0; k < depth; ++k)
        hi[k] = extent(rng);

    ir::ProgramBuilder b(depth);

    auto random_sub = [&](bool force_var, size_t var) {
        IntVec row(depth, 0);
        bool nonzero = false;
        for (size_t k = 0; k < depth; ++k) {
            row[k] = coef(rng);
            nonzero = nonzero || row[k] != 0;
        }
        if (force_var || !nonzero)
            row[var] = 1;
        return row;
    };
    size_t nsubs = 2;
    std::vector<IntVec> xrows, yrows;
    for (size_t d = 0; d < nsubs; ++d) {
        xrows.push_back(random_sub(d == 0, d % depth));
        yrows.push_back(random_sub(false, (d + 1) % depth));
    }
    Int xshift = shift(rng), yshift = shift(rng);

    auto range_of = [&](const IntVec &row) {
        Int lo = 0, up = 0;
        for (size_t k = 0; k < depth; ++k) {
            if (row[k] > 0)
                up += row[k] * hi[k];
            else
                lo += row[k] * hi[k];
        }
        return std::pair<Int, Int>(lo, up);
    };

    std::vector<ir::AffineExpr> xext, yext;
    IntVec xoff, yoff;
    for (size_t d = 0; d < nsubs; ++d) {
        auto [lo, up] = range_of(xrows[d]);
        xoff.push_back(-lo);
        xext.push_back(ir::AffineExpr::constant(
            Rational(up - lo + 1 + xshift), 0, 0));
        auto [lo2, up2] = range_of(yrows[d]);
        yoff.push_back(-lo2);
        yext.push_back(ir::AffineExpr::constant(
            Rational(up2 - lo2 + 1 + yshift), 0, 0));
    }
    ir::DistributionSpec dist =
        kind(rng) == 0 ? ir::DistributionSpec::wrapped(1)
                       : (kind(rng) == 1 ? ir::DistributionSpec::blocked(1)
                                         : ir::DistributionSpec::wrapped(0));
    size_t ax = b.array("X", xext, dist);
    size_t ay = b.array("Y", yext, ir::DistributionSpec::wrapped(1));

    for (size_t k = 0; k < depth; ++k) {
        if (k > 0 && kind(rng) == 0)
            b.loop("i" + std::to_string(k), b.var(k - 1), b.cst(hi[k]));
        else
            b.loop("i" + std::to_string(k), b.cst(0), b.cst(hi[k]));
    }

    auto make_ref = [&](size_t arr, const std::vector<IntVec> &rows,
                        const IntVec &off, Int extra) {
        std::vector<ir::AffineExpr> subs;
        for (size_t d = 0; d < rows.size(); ++d) {
            ir::AffineExpr e = b.cst(off[d] + (d == 0 ? extra : 0));
            for (size_t k = 0; k < depth; ++k)
                if (rows[d][k] != 0)
                    e = e + b.var(k).scaled(Rational(rows[d][k]));
            subs.push_back(e);
        }
        return b.ref(arr, subs);
    };

    ir::ArrayRef lhs = make_ref(ax, xrows, xoff, 0);
    ir::Expr rhs = ir::Expr::binary(
        '+', ir::Expr::arrayRead(make_ref(ax, xrows, xoff, xshift)),
        ir::Expr::arrayRead(make_ref(ay, yrows, yoff, 0)));
    b.assign(lhs, rhs);
    return b.build();
}

TEST(SymbolicTest, FuzzedProgramsSymbolicAndOracleVerdictsAgree)
{
    // 40 random programs, every space enumerable: the symbolic-only
    // verdict and the oracle must independently come back clean and
    // therefore agree -- no divergence on any check, ever.
    std::mt19937 rng(20260808);
    for (int trial = 0; trial < 40; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        ir::Program prog = generate(rng, 2 + size_t(trial % 2));
        core::Compilation c = core::compile(prog);

        ValidationReport r =
            validate(c.program, c.nest(), c.normalization.depMatrix,
                     symbolicOnly());
        EXPECT_TRUE(r.passed()) << r.render();

        EnumerationOracle o = enumerationOracle(c.program, c.nest());
        ASSERT_TRUE(o.feasible) << o.reason;
        EXPECT_TRUE(o.allOk())
            << o.latticeDetail << " | " << o.orderDetail << " | "
            << o.differentialDetail;
        EXPECT_EQ(r.passed(), o.allOk());
    }
}

TEST(SymbolicTest, FuzzedMiscompiledPlansFailOnBothSides)
{
    // Widening the emitted innermost upper bound by one stride step
    // always admits at least one point that is the image of no source
    // iteration. Both the symbolic prover (with no enumeration budget
    // at all) and the oracle must refuse the plan -- miscompiled plans
    // never pass, and the two verdicts must agree on WHY (lattice).
    std::mt19937 rng(0x5eedf00d);
    int tampered = 0;
    for (int trial = 0; trial < 200 && tampered < 40; ++trial) {
        ir::Program prog = generate(rng, 2 + size_t(trial % 2));
        core::Compilation c = core::compile(prog);
        std::vector<xform::TransformedLoop> loops = c.nest().loops();
        if (loops.back().upper.size() != 1)
            continue; // a min-bound could still bind; skip the trial
        SCOPED_TRACE("trial " + std::to_string(trial));
        ++tampered;
        loops.back().upper[0].constantTerm() =
            loops.back().upper[0].constantTerm() +
            Rational(loops.back().stride);
        xform::TransformedNest bad =
            rebuild(c.nest(), std::move(loops), c.nest().body());

        ValidationReport r = validate(c.program, bad,
                                      c.normalization.depMatrix,
                                      symbolicOnly());
        EXPECT_FALSE(r.passed()) << r.render();
        EXPECT_FALSE(check(r, CheckKind::LatticeEquivalence).passed);

        EnumerationOracle o = enumerationOracle(c.program, bad);
        ASSERT_TRUE(o.feasible) << o.reason;
        EXPECT_FALSE(o.latticeOk) << o.latticeDetail;
        EXPECT_EQ(r.passed(), o.allOk());
    }
    EXPECT_EQ(tampered, 40);
}

TEST(SymbolicTest, GalleryTamperShapesFailOnBothSides)
{
    // Three independent tamper shapes on gallery kernels; for each,
    // the symbolic-only verdict and the oracle must agree that the
    // plan is wrong, through the check that owns the breakage.
    {
        // Shifted lower bound: the emitted nest misses points.
        core::Compilation c =
            core::compile(ir::gallery::section3Example());
        std::vector<xform::TransformedLoop> loops = c.nest().loops();
        loops.back().lower[0].constantTerm() =
            loops.back().lower[0].constantTerm() + Rational(1);
        xform::TransformedNest bad =
            rebuild(c.nest(), std::move(loops), c.nest().body());
        ValidationReport r = validate(c.program, bad,
                                      c.normalization.depMatrix,
                                      symbolicOnly());
        EXPECT_FALSE(check(r, CheckKind::LatticeEquivalence).passed);
        EnumerationOracle o = enumerationOracle(c.program, bad);
        ASSERT_TRUE(o.feasible) << o.reason;
        EXPECT_FALSE(o.latticeOk);
        EXPECT_EQ(r.passed(), o.allOk());
    }
    {
        // Perturbed transform entry: the nest no longer describes
        // T(source space), and T * T^-1 != I.
        core::Compilation c = core::compile(ir::gallery::gemm());
        IntMatrix t2 = c.nest().transform();
        t2(0, 0) = t2(0, 0) + 1;
        xform::TransformedNest bad(
            t2, c.nest().inverseTransform(), c.nest().lattice(),
            c.nest().loops(), c.nest().body(),
            c.nest().paramConditions());
        ValidationReport r = validate(c.program, bad,
                                      c.normalization.depMatrix,
                                      symbolicOnly());
        EXPECT_FALSE(r.passed()) << r.render();
        EnumerationOracle o = enumerationOracle(c.program, bad);
        ASSERT_TRUE(o.feasible) << o.reason;
        EXPECT_FALSE(o.allOk());
        EXPECT_EQ(r.passed(), o.allOk());
    }
    {
        // Swapped write subscripts: space and order intact, footprints
        // differ -- both sides must catch it in the body check alone.
        core::Compilation c = core::compile(ir::gallery::gemm());
        std::vector<ir::Statement> body = c.nest().body();
        ASSERT_GE(body[0].lhs.subscripts.size(), 2u);
        std::swap(body[0].lhs.subscripts[0], body[0].lhs.subscripts[1]);
        xform::TransformedNest bad =
            rebuild(c.nest(), c.nest().loops(), std::move(body));
        ValidationReport r = validate(c.program, bad,
                                      c.normalization.depMatrix,
                                      symbolicOnly());
        EXPECT_TRUE(check(r, CheckKind::LatticeEquivalence).passed);
        EXPECT_FALSE(
            check(r, CheckKind::DifferentialExecution).passed);
        EnumerationOracle o = enumerationOracle(c.program, bad);
        ASSERT_TRUE(o.feasible) << o.reason;
        EXPECT_TRUE(o.latticeOk) << o.latticeDetail;
        ASSERT_TRUE(o.differentialRan);
        EXPECT_FALSE(o.differentialOk);
        EXPECT_EQ(r.passed(), o.allOk());
    }
}

TEST(SymbolicTest, DependenceViolationIsCaughtOnlySymbolically)
{
    // The oracle checks the scan set, the scan order, and the concrete
    // footprints -- it has no dependence-distance check. Reversing the
    // outer Gauss-Seidel loop builds a bijective nest that enumerates
    // the right points in (its own) lexicographic order, so the only
    // layer that can reject it for every parameter value is the
    // symbolic dependence-preservation check: the symbolic side is
    // strictly stronger than enumeration here.
    ir::Program prog = ir::gallery::gaussSeidel();
    IntMatrix rev(2, 2);
    rev(0, 0) = -1;
    rev(1, 1) = 1;
    xform::TransformedNest nest = xform::applyTransform(prog, rev);
    deps::DependenceInfo dinfo = deps::analyzeDependences(prog);

    ValidationReport r =
        validate(prog, nest, dinfo.matrix(2), symbolicOnly());
    EXPECT_TRUE(check(r, CheckKind::LatticeEquivalence).passed);
    EXPECT_FALSE(check(r, CheckKind::DependencePreservation).passed);

    EnumerationOracle o = enumerationOracle(prog, nest);
    ASSERT_TRUE(o.feasible) << o.reason;
    EXPECT_TRUE(o.latticeOk) << o.latticeDetail;
    EXPECT_TRUE(o.orderOk) << o.orderDetail;
}

} // namespace
} // namespace anc::verify
