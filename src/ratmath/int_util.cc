#include "ratmath/int_util.h"

#include <limits>

#include "ratmath/fault.h"

namespace anc {

namespace {

constexpr Int kMax = std::numeric_limits<Int>::max();
constexpr Int kMin = std::numeric_limits<Int>::min();

} // namespace

Int
checkedAdd(Int a, Int b)
{
    fault::detail::checkpoint();
    Int r;
    if (__builtin_add_overflow(a, b, &r))
        throw OverflowError("integer overflow in addition");
    return r;
}

Int
checkedSub(Int a, Int b)
{
    fault::detail::checkpoint();
    Int r;
    if (__builtin_sub_overflow(a, b, &r))
        throw OverflowError("integer overflow in subtraction");
    return r;
}

Int
checkedMul(Int a, Int b)
{
    fault::detail::checkpoint();
    Int r;
    if (__builtin_mul_overflow(a, b, &r))
        throw OverflowError("integer overflow in multiplication");
    return r;
}

Int
checkedNeg(Int a)
{
    fault::detail::checkpoint();
    if (a == kMin)
        throw OverflowError("integer overflow in negation");
    return -a;
}

Int
narrow128(Int128 v)
{
    fault::detail::checkpoint();
    if (v > Int128(kMax) || v < Int128(kMin))
        throw OverflowError("128-bit value does not fit in 64 bits");
    return Int(v);
}

Int
gcdInt(Int a, Int b)
{
    fault::detail::checkpoint();
    // Work in unsigned space so INT64_MIN does not overflow on negation.
    std::uint64_t ua = a < 0 ? 0ull - std::uint64_t(a) : std::uint64_t(a);
    std::uint64_t ub = b < 0 ? 0ull - std::uint64_t(b) : std::uint64_t(b);
    while (ub != 0) {
        std::uint64_t t = ua % ub;
        ua = ub;
        ub = t;
    }
    if (ua > std::uint64_t(kMax))
        throw OverflowError("gcd does not fit in 64 bits");
    return Int(ua);
}

Int
lcmInt(Int a, Int b)
{
    if (a == 0 || b == 0)
        return 0;
    Int g = gcdInt(a, b);
    Int q = a / g;
    if (q < 0)
        q = checkedNeg(q);
    Int bb = b < 0 ? checkedNeg(b) : b;
    return checkedMul(q, bb);
}

ExtGcd
extGcd(Int a, Int b)
{
    // Iterative extended Euclid; coefficients stay within 64 bits because
    // they are bounded by max(|a|, |b|).
    Int old_r = a, r = b;
    Int old_s = 1, s = 0;
    Int old_t = 0, t = 1;
    while (r != 0) {
        Int q = old_r / r;
        Int tmp = checkedSub(old_r, checkedMul(q, r));
        old_r = r;
        r = tmp;
        tmp = checkedSub(old_s, checkedMul(q, s));
        old_s = s;
        s = tmp;
        tmp = checkedSub(old_t, checkedMul(q, t));
        old_t = t;
        t = tmp;
    }
    if (old_r < 0) {
        old_r = checkedNeg(old_r);
        old_s = checkedNeg(old_s);
        old_t = checkedNeg(old_t);
    }
    return {old_r, old_s, old_t};
}

Int
floorDiv(Int a, Int b)
{
    fault::detail::checkpoint();
    if (b == 0)
        throw MathError("floorDiv by zero");
    // kMin / -1 is the one quotient that overflows (and hardware
    // division traps on it before any sign fixup could run).
    if (b == -1)
        return checkedNeg(a);
    Int q = a / b;
    Int r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        --q;
    return q;
}

Int
ceilDiv(Int a, Int b)
{
    fault::detail::checkpoint();
    if (b == 0)
        throw MathError("ceilDiv by zero");
    if (b == -1)
        return checkedNeg(a); // see floorDiv
    Int q = a / b;
    Int r = a % b;
    if (r != 0 && ((r < 0) == (b < 0)))
        ++q;
    return q;
}

Int
euclidMod(Int a, Int b)
{
    fault::detail::checkpoint();
    if (b == 0)
        throw MathError("euclidMod by zero");
    if (b == 1 || b == -1)
        return 0; // and kMin % -1 would trap in hardware
    Int r = a % b;
    // Adding |b| directly would overflow for b == kMin; subtracting a
    // negative b is the same adjustment without forming |b|.
    if (r < 0)
        r = b < 0 ? checkedSub(r, b) : checkedAdd(r, b);
    return r;
}

Int
exactDiv(Int a, Int b)
{
    fault::detail::checkpoint();
    if (b == 0)
        throw MathError("exactDiv by zero");
    if (b == -1)
        return checkedNeg(a); // see floorDiv
    if (a % b != 0)
        throw InternalError("exactDiv: not divisible");
    return a / b;
}

} // namespace anc
