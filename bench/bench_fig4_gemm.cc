/**
 * @file
 * Figure 4 reproduction: speedup of GEMM on the modeled Butterfly
 * GP1000 for P = 1..28 processors, three curves:
 *
 *   gemm   -- the original nest, outer loop distributed round-robin
 *   gemmT  -- access-normalized, element-wise remote accesses
 *   gemmB  -- access-normalized with block transfers
 *
 * The paper runs 400x400 doubles on real hardware; we default to a
 * smaller N (the speedup shape depends on cost ratios, not N) and
 * support ANC_BENCH_FULL=1 for the paper's exact size.
 *
 * Asserted along the way: the worked facts of Section 8.1 (the data
 * access matrix, the dependence (0,0,1), and T itself).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/compiler.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

Int
benchN()
{
    return bench::fullScale() ? 400 : bench::envInt("ANC_BENCH_N", 140);
}

struct Fig4Data
{
    core::Compilation plain;
    core::Compilation normalized;
    double seqTime;
    Int n;
};

Fig4Data &
data()
{
    static Fig4Data d = [] {
        core::CompileOptions identity;
        identity.identityTransform = true;
        Fig4Data x{core::compile(ir::gallery::gemm(), identity),
                   core::compile(ir::gallery::gemm()), 0.0, benchN()};
        // Section 8.1's worked results must hold or the figure is void.
        IntMatrix expect_t{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
        if (x.normalized.normalization.transform != expect_t)
            throw InternalError("fig4: unexpected transformation");
        if (x.normalized.normalization.depMatrix.column(0) !=
            IntVec{0, 0, 1})
            throw InternalError("fig4: unexpected dependence matrix");
        x.seqTime = core::sequentialTime(
            x.normalized, numa::MachineParams::butterflyGP1000(), {x.n});
        return x;
    }();
    return d;
}

struct Measured
{
    double speedup;
    double simTimeUs;
    double wallSeconds;
};

Measured
measure(const core::Compilation &c, Int p, bool blocks)
{
    numa::SimOptions opts;
    opts.processors = p;
    opts.blockTransfers = blocks;
    // Mild switch-contention term (Agarwal [1]): remote latency grows
    // with the number of processors sharing the network. Ablated in
    // bench_msgsize.
    opts.machine.contentionFactor = 0.01;
    bench::WallTimer timer;
    numa::SimStats s = core::simulate(c, opts, {{data().n}, {}});
    double wall = timer.seconds();
    return {s.speedup(data().seqTime), s.parallelTime(), wall};
}

double
speedupOf(const core::Compilation &c, Int p, bool blocks)
{
    return measure(c, p, blocks).speedup;
}

void
printFigure4()
{
    Fig4Data &d = data();
    std::printf("=== Figure 4: Speedup of GEMM (N = %lld, %s) ===\n",
                static_cast<long long>(d.n),
                "wrapped-column, BBN Butterfly GP1000 model");
    bench::printSpeedupHeader("speedup vs. processors",
                              {"gemm", "gemmT", "gemmB"});
    bench::JsonReport report("fig4_gemm");
    report.flag("N", d.n);
    report.flag("full", bench::fullScale());
    report.flag("contentionFactor", 0.01);
    report.flag("sampled", false);
    for (Int p : bench::paperProcessorCounts()) {
        Measured plain = measure(d.plain, p, false);
        Measured norm_t = measure(d.normalized, p, false);
        Measured norm_b = measure(d.normalized, p, true);
        report.run("gemm", p, plain.wallSeconds, plain.simTimeUs,
                   plain.speedup);
        report.run("gemmT", p, norm_t.wallSeconds, norm_t.simTimeUs,
                   norm_t.speedup);
        report.run("gemmB", p, norm_b.wallSeconds, norm_b.simTimeUs,
                   norm_b.speedup);
        bench::printSpeedupRow(
            p, {plain.speedup, norm_t.speedup, norm_b.speedup});
    }
    std::printf("\npaper shape: gemm saturates below ~8; gemmT and gemmB "
                "keep climbing,\nwith gemmB highest and the T-to-B gap "
                "modest (3 of 4 accesses already local).\n\n");
    report.write();
}

void
BM_Fig4_SimulateGemmB(benchmark::State &state)
{
    Int p = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(speedupOf(data().normalized, p, true));
    }
}
BENCHMARK(BM_Fig4_SimulateGemmB)->Arg(4)->Arg(16)->Arg(28)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig4_SimulateGemmPlain(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            speedupOf(data().plain, state.range(0), false));
    }
}
BENCHMARK(BM_Fig4_SimulateGemmPlain)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig4_CompileGemm(benchmark::State &state)
{
    ir::Program p = ir::gallery::gemm();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(p));
    }
}
BENCHMARK(BM_Fig4_CompileGemm)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
