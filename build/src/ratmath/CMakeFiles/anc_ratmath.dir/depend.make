# Empty dependencies file for anc_ratmath.
# This may be replaced when dependencies are built.
