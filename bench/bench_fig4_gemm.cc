/**
 * @file
 * Figure 4 reproduction: speedup of GEMM on the modeled Butterfly
 * GP1000 for P = 1..28 processors, three curves:
 *
 *   gemm   -- the original nest, outer loop distributed round-robin
 *   gemmT  -- access-normalized, element-wise remote accesses
 *   gemmB  -- access-normalized with block transfers
 *
 * The paper runs 400x400 doubles on real hardware; we default to a
 * smaller N (the speedup shape depends on cost ratios, not N) and
 * support ANC_BENCH_FULL=1 for the paper's exact size.
 *
 * Asserted along the way: the worked facts of Section 8.1 (the data
 * access matrix, the dependence (0,0,1), and T itself).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/compiler.h"
#include "core/profile.h"
#include "ir/gallery.h"

namespace {

using namespace anc;

Int
benchN()
{
    return bench::fullScale() ? 400 : bench::envInt("ANC_BENCH_N", 140);
}

struct Fig4Data
{
    core::Compilation plain;
    core::Compilation normalized;
    double seqTime;
    Int n;
};

Fig4Data &
data()
{
    static Fig4Data d = [] {
        core::CompileOptions identity;
        identity.identityTransform = true;
        Fig4Data x{core::compile(ir::gallery::gemm(), identity),
                   core::compile(ir::gallery::gemm()), 0.0, benchN()};
        // Section 8.1's worked results must hold or the figure is void.
        IntMatrix expect_t{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
        if (x.normalized.normalization.transform != expect_t)
            throw InternalError("fig4: unexpected transformation");
        if (x.normalized.normalization.depMatrix.column(0) !=
            IntVec{0, 0, 1})
            throw InternalError("fig4: unexpected dependence matrix");
        x.seqTime = core::sequentialTime(
            x.normalized, numa::MachineParams::butterflyGP1000(), {x.n});
        return x;
    }();
    return d;
}

struct Measured
{
    double speedup;
    double simTimeUs;
    double wallSeconds;
};

Measured
measure(const core::Compilation &c, Int p, bool blocks)
{
    numa::SimOptions opts;
    opts.processors = p;
    opts.blockTransfers = blocks;
    // Mild switch-contention term (Agarwal [1]): remote latency grows
    // with the number of processors sharing the network. Ablated in
    // bench_msgsize.
    opts.machine.contentionFactor = 0.01;
    bench::WallTimer timer;
    numa::SimStats s = core::simulate(c, opts, {{data().n}, {}});
    double wall = timer.seconds();
    return {s.speedup(data().seqTime), s.parallelTime(), wall};
}

double
speedupOf(const core::Compilation &c, Int p, bool blocks)
{
    return measure(c, p, blocks).speedup;
}

/**
 * Guard on the observability off-switch: with SimOptions::trace unset
 * and perReference off, the simulator hot path must do no
 * observability work at all (no per-ref vectors, no event buffers, and
 * certainly no atomics), so the disabled run must not be measurably
 * slower than before the subsystem existed. Checked three ways: the
 * off run's per-reference vectors stay empty, its aggregate counters
 * are bit-identical to the instrumented run's, and its best-of-3 wall
 * time is within a generous margin of the instrumented run's (the off
 * path does strictly less work; if it were doing hidden bookkeeping
 * this inequality is what would break). Throws InternalError on any
 * violation so CI fails loudly.
 */
void
verifyObsOffSwitch(bench::JsonReport &report)
{
    Fig4Data &d = data();
    auto run_once = [&](bool with_obs, numa::SimStats *out) {
        numa::SimOptions opts;
        opts.processors = 28;
        opts.blockTransfers = true;
        opts.machine.contentionFactor = 0.01;
        obs::Trace trace;
        if (with_obs) {
            opts.perReference = true;
            opts.commMatrix = true;
            opts.trace = &trace;
            opts.tracePid = trace.process("gemmB P=28");
        }
        bench::WallTimer timer;
        *out = core::simulate(d.normalized, opts, {{d.n}, {}});
        return timer.seconds();
    };
    auto best_of = [&](bool with_obs, numa::SimStats *out) {
        double best = run_once(with_obs, out);
        for (int i = 0; i < 2; ++i)
            best = std::min(best, run_once(with_obs, out));
        return best;
    };
    numa::SimStats off, on;
    double off_s = best_of(false, &off);
    double on_s = best_of(true, &on);

    for (const numa::ProcStats &p : off.perProc)
        if (!p.localByRef.empty() || !p.remoteByRef.empty() ||
            !p.blockElementsByRef.empty())
            throw InternalError(
                "fig4: disabled run collected per-reference counters");
    for (const numa::ProcStats &p : off.perProc)
        if (!p.comm.empty())
            throw InternalError(
                "fig4: disabled run collected communication-matrix rows");
    if (!off.refNames.empty())
        throw InternalError("fig4: disabled run filled refNames");
    if (off.perProc.size() != on.perProc.size())
        throw InternalError("fig4: obs on/off proc count mismatch");
    for (size_t i = 0; i < off.perProc.size(); ++i) {
        const numa::ProcStats &a = off.perProc[i];
        const numa::ProcStats &b = on.perProc[i];
        if (a.localAccesses != b.localAccesses ||
            a.remoteAccesses != b.remoteAccesses ||
            a.blockElements != b.blockElements || a.time != b.time)
            throw InternalError(
                "fig4: observability perturbed the simulated stats");
    }
    // Generous wall-time margin: the margin absorbs scheduler noise,
    // not bookkeeping -- a hot path that grew obs work fails anyway.
    if (off_s > on_s * 1.5 + 0.05)
        throw InternalError(
            "fig4: obs-off run slower than instrumented run (off " +
            std::to_string(off_s) + "s vs on " + std::to_string(on_s) +
            "s); the off-switch is doing work");
    // Explain is a pure sink over the finished Compilation: building
    // the record twice must render byte-identically and cannot touch
    // the stats at all (it never sees them).
    obs::ExplainRecord e1 = core::explain(d.normalized);
    obs::ExplainRecord e2 = core::explain(d.normalized);
    if (e1.renderJson() != e2.renderJson())
        throw InternalError("fig4: explain record is not deterministic");

    report.flag("obs_off_wall_s", off_s);
    report.flag("obs_on_wall_s", on_s);
    std::printf("obs off-switch guard: off %.3fms, instrumented %.3fms, "
                "stats bit-identical (comm/explain covered)\n",
                off_s * 1e3, on_s * 1e3);
}

void
printFigure4()
{
    Fig4Data &d = data();
    std::printf("=== Figure 4: Speedup of GEMM (N = %lld, %s) ===\n",
                static_cast<long long>(d.n),
                "wrapped-column, BBN Butterfly GP1000 model");
    bench::printSpeedupHeader("speedup vs. processors",
                              {"gemm", "gemmT", "gemmB"});
    bench::JsonReport report("fig4_gemm");
    report.flag("N", d.n);
    report.flag("full", bench::fullScale());
    report.flag("contentionFactor", 0.01);
    report.flag("sampled", false);
    for (Int p : bench::paperProcessorCounts()) {
        Measured plain = measure(d.plain, p, false);
        Measured norm_t = measure(d.normalized, p, false);
        Measured norm_b = measure(d.normalized, p, true);
        report.run("gemm", p, plain.wallSeconds, plain.simTimeUs,
                   plain.speedup);
        report.run("gemmT", p, norm_t.wallSeconds, norm_t.simTimeUs,
                   norm_t.speedup);
        report.run("gemmB", p, norm_b.wallSeconds, norm_b.simTimeUs,
                   norm_b.speedup);
        bench::printSpeedupRow(
            p, {plain.speedup, norm_t.speedup, norm_b.speedup});
    }
    std::printf("\npaper shape: gemm saturates below ~8; gemmT and gemmB "
                "keep climbing,\nwith gemmB highest and the T-to-B gap "
                "modest (3 of 4 accesses already local).\n\n");
    verifyObsOffSwitch(report);

    // Embed a metrics snapshot: compile phases plus the headline P=28
    // block-transfer run, derived from the same SimStats the figure
    // used (single source of truth).
    obs::MetricsRegistry reg;
    core::recordCompileMetrics(reg, d.normalized);
    numa::SimOptions mopts;
    mopts.processors = 28;
    mopts.machine.contentionFactor = 0.01;
    mopts.perReference = true;
    core::recordSimMetrics(reg,
                           core::simulate(d.normalized, mopts, {{d.n}, {}}),
                           mopts.machine, "sim.p28.");
    report.metrics(reg);
    report.write();
}

void
BM_Fig4_SimulateGemmB(benchmark::State &state)
{
    Int p = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(speedupOf(data().normalized, p, true));
    }
}
BENCHMARK(BM_Fig4_SimulateGemmB)->Arg(4)->Arg(16)->Arg(28)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig4_SimulateGemmPlain(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            speedupOf(data().plain, state.range(0), false));
    }
}
BENCHMARK(BM_Fig4_SimulateGemmPlain)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_Fig4_CompileGemm(benchmark::State &state)
{
    ir::Program p = ir::gallery::gemm();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::compile(p));
    }
}
BENCHMARK(BM_Fig4_CompileGemm)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
