# Empty dependencies file for syr2k_numa.
# This may be replaced when dependencies are built.
