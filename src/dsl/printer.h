/**
 * @file
 * Serialization of Program IR back to parseable DSL source.
 *
 * printDsl produces text that parseProgram accepts and that round-trips
 * to a structurally identical program (same declarations, bounds,
 * statements). Useful for saving derived programs -- e.g. the output of
 * xform::suggestDistributions -- as .an files.
 */

#ifndef ANC_DSL_PRINTER_H
#define ANC_DSL_PRINTER_H

#include <string>

#include "ir/loop_nest.h"

namespace anc::dsl {

/** Render a program as DSL source. Throws UserError if the program
 * uses constructs the DSL cannot express (it currently can express
 * everything the IR can). */
std::string printDsl(const ir::Program &prog);

} // namespace anc::dsl

#endif // ANC_DSL_PRINTER_H
