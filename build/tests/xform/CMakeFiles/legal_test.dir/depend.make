# Empty dependencies file for legal_test.
# This may be replaced when dependencies are built.
