# Empty dependencies file for anc_deps.
# This may be replaced when dependencies are built.
