file(REMOVE_RECURSE
  "CMakeFiles/sim_edge_test.dir/sim_edge_test.cc.o"
  "CMakeFiles/sim_edge_test.dir/sim_edge_test.cc.o.d"
  "sim_edge_test"
  "sim_edge_test.pdb"
  "sim_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
