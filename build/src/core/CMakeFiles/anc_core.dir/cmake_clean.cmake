file(REMOVE_RECURSE
  "CMakeFiles/anc_core.dir/compiler.cc.o"
  "CMakeFiles/anc_core.dir/compiler.cc.o.d"
  "libanc_core.a"
  "libanc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
