file(REMOVE_RECURSE
  "CMakeFiles/fuzz_pipeline_test.dir/fuzz_pipeline_test.cc.o"
  "CMakeFiles/fuzz_pipeline_test.dir/fuzz_pipeline_test.cc.o.d"
  "fuzz_pipeline_test"
  "fuzz_pipeline_test.pdb"
  "fuzz_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
