/**
 * @file
 * Unit tests for concrete data distributions.
 */

#include <gtest/gtest.h>

#include "numa/distribution.h"

namespace anc::numa {
namespace {

TEST(SquarishFactorsTest, Values)
{
    EXPECT_EQ(squarishFactors(1), (std::pair<Int, Int>{1, 1}));
    EXPECT_EQ(squarishFactors(12), (std::pair<Int, Int>{3, 4}));
    EXPECT_EQ(squarishFactors(16), (std::pair<Int, Int>{4, 4}));
    EXPECT_EQ(squarishFactors(7), (std::pair<Int, Int>{1, 7}));
    EXPECT_EQ(squarishFactors(28), (std::pair<Int, Int>{4, 7}));
    EXPECT_THROW(squarishFactors(0), InternalError);
}

TEST(WrappedDist, RoundRobinOwnership)
{
    // Wrapped column: processor 0 gets columns 0, P, 2P, ... (Sec. 2.1).
    Distribution d(ir::DistributionSpec::wrapped(1), {8, 8}, 3);
    EXPECT_EQ(d.owner({0, 0}), 0);
    EXPECT_EQ(d.owner({5, 3}), 0);
    EXPECT_EQ(d.owner({5, 4}), 1);
    EXPECT_EQ(d.owner({7, 7}), 1);
    EXPECT_EQ(d.owner({0, 5}), 2);
    EXPECT_EQ(d.ownerOfIndex(6), 0);
    EXPECT_FALSE(d.replicated());
}

TEST(WrappedDist, RowDistribution)
{
    Distribution d(ir::DistributionSpec::wrapped(0), {8, 8}, 4);
    EXPECT_EQ(d.owner({5, 0}), 1);
    EXPECT_EQ(d.owner({5, 7}), 1);
    EXPECT_EQ(d.owner({4, 2}), 0);
}

TEST(BlockedDist, ContiguousChunks)
{
    // Extent 10 over 4 processors: block size ceil(10/4) = 3.
    Distribution d(ir::DistributionSpec::blocked(1), {4, 10}, 4);
    EXPECT_EQ(d.blockSize(), 3);
    EXPECT_EQ(d.owner({0, 0}), 0);
    EXPECT_EQ(d.owner({0, 2}), 0);
    EXPECT_EQ(d.owner({0, 3}), 1);
    EXPECT_EQ(d.owner({0, 8}), 2);
    EXPECT_EQ(d.owner({0, 9}), 3);
    EXPECT_EQ(d.ownerOfIndex(9), 3);
}

TEST(BlockedDist, LastProcessorAbsorbsRemainder)
{
    // Extent 9 over 4: blocks of 3; processor 3 owns nothing.
    Distribution d(ir::DistributionSpec::blocked(0), {9}, 4);
    for (Int i = 0; i < 9; ++i)
        EXPECT_EQ(d.owner({i}), i / 3);
}

TEST(Block2DDist, GridOwnership)
{
    // 6x6 array on 4 processors: 2x2 grid, 3x3 blocks.
    Distribution d(ir::DistributionSpec::block2d(0, 1), {6, 6}, 4);
    EXPECT_EQ(d.owner({0, 0}), 0);
    EXPECT_EQ(d.owner({0, 3}), 1);
    EXPECT_EQ(d.owner({3, 0}), 2);
    EXPECT_EQ(d.owner({5, 5}), 3);
    EXPECT_THROW(d.ownerOfIndex(0), InternalError);
}

TEST(ReplicatedDist, AlwaysLocal)
{
    Distribution d(ir::DistributionSpec::replicated(), {8, 8}, 4);
    EXPECT_TRUE(d.replicated());
    EXPECT_EQ(d.owner({3, 3}), -1);
    EXPECT_EQ(d.ownerOfIndex(5), -1);
}

TEST(DistErrors, Validation)
{
    EXPECT_THROW(
        Distribution(ir::DistributionSpec::wrapped(2), {8, 8}, 4),
        InternalError);
    EXPECT_THROW(
        Distribution(ir::DistributionSpec::wrapped(0), {8}, 0),
        InternalError);
}

TEST(WrappedDist, EveryProcessorGetsFairShare)
{
    Distribution d(ir::DistributionSpec::wrapped(0), {100}, 7);
    IntVec counts(7, 0);
    for (Int i = 0; i < 100; ++i)
        counts[size_t(d.owner({i}))]++;
    for (Int c : counts)
        EXPECT_NEAR(double(c), 100.0 / 7.0, 1.0);
}

} // namespace
} // namespace anc::numa
