# Empty dependencies file for bench_perfmodel.
# This may be replaced when dependencies are built.
