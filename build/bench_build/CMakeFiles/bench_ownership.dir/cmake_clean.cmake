file(REMOVE_RECURSE
  "../bench/bench_ownership"
  "../bench/bench_ownership.pdb"
  "CMakeFiles/bench_ownership.dir/bench_ownership.cc.o"
  "CMakeFiles/bench_ownership.dir/bench_ownership.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
