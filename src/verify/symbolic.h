/**
 * @file
 * The symbolic translation-validation prover.
 *
 * Enumeration-based validation degrades with iteration-space size: the
 * nests production traffic cares about are exactly the ones a
 * point-by-point oracle cannot afford. This module proves the same
 * three claims symbolically, treating the loop bounds' parameters as
 * free symbols, so the cost depends only on nest depth and constraint
 * count — never on trip count:
 *
 *  1. Lattice equivalence. The emitted nest scans T(P) ∩ T·Zⁿ. The
 *     lattice part is decided exactly: the column Hermite normal form
 *     of T must equal the emitted stride/anchor lattice (HNF is a
 *     canonical form), the Smith invariant factors must multiply to
 *     the same index, and Diophantine solves re-prove generator
 *     membership in both directions through independent code. The
 *     polyhedron part substitutes u = T·x so both bound systems live
 *     in source space over integer points, then discharges one
 *     implication per bound: source system ⟹ each emitted bound
 *     (nothing is lost) and emitted system ⟹ each source bound
 *     (nothing is invented). Implications are proved by
 *     Fourier-Motzkin refutation over variables AND parameters — a
 *     rational contradiction of {system, ¬bound} is a proof valid for
 *     every parameter value. A failed proof triggers an integer
 *     witness search down the elimination cascade; a witness is a
 *     concrete counterexample iteration, reported with its parameter
 *     binding.
 *
 *  2. Dependence preservation. T·d lex-positive per column (already
 *     symbolic), plus a symbolic re-derivation of the premise that the
 *     emitted nest really scans in lexicographic order: bounds at
 *     level k may reference only outer variables, and the lattice HNF
 *     is lower-triangular with positive diagonal, which makes the
 *     per-level ascending stride walk lexicographic by construction.
 *
 *  3. Body equivalence. T·T⁻¹ == I exactly, and every emitted
 *     statement must equal the source statement with each affine
 *     (subscripts, index expressions) composed through x = T⁻¹u —
 *     coefficient-exact, so together with (1) and (2) the executions
 *     write identical footprints. Closed-form trip counts via abstract
 *     acceleration (Faulhaber sums over the bound polynomials) are
 *     attached where a closed form exists.
 *
 * Verdicts are pass or fail only. An obligation that can neither be
 * proved nor refuted within budget is a FAIL (conservative), never a
 * skip; for pipeline-produced nests every obligation is rationally
 * provable by construction, because Fourier-Motzkin emits bounds that
 * are nonnegative combinations of source constraints and vice versa.
 */

#ifndef ANC_VERIFY_SYMBOLIC_H
#define ANC_VERIFY_SYMBOLIC_H

#include <optional>
#include <string>
#include <vector>

#include "core/cancel.h"
#include "ratmath/polynomial.h"
#include "xform/transform.h"

namespace anc::verify {

/**
 * One integer linear inequality  var·x + param·N + cst >= 0 with
 * primitive integer coefficients, plus a human-readable provenance
 * used in counterexample reports.
 */
struct SymConstraint
{
    IntVec var;
    IntVec param;
    Int cst = 0;
    std::string origin;

    /** Exact evaluation at an integer point. */
    Int evaluate(const IntVec &x, const IntVec &p) const;
};

/** Build the primitive-integer form of `e >= 0`. A constraint with no
 * variable or parameter coefficients keeps its sign as a pure
 * constant (trivially true or false). */
SymConstraint makeConstraint(const ir::AffineExpr &e, std::string origin);

/** Verdict of one implication query. */
enum class ProofStatus
{
    Proven,  //!< holds for every integer point and parameter value
    Refuted, //!< witness found: sys holds, goal violated
    Unknown, //!< neither; callers must treat this as a failure
};

struct ProofResult
{
    ProofStatus status = ProofStatus::Unknown;
    IntVec witnessVars;   //!< Refuted: the violating iteration
    IntVec witnessParams; //!< Refuted: the parameter binding
    std::string note;
};

/** Budgets for one prover run. */
struct ProverOptions
{
    /** Working-set cap per Fourier-Motzkin level; beyond it the
     * elimination keeps only the tightest rows (soundness is
     * unaffected -- derived rows are consequences either way). */
    size_t maxRows = 4096;
    /** Integer candidates tried per level of the witness search. */
    Int candidateSpan = 24;
    /** Total witness-search nodes before giving up (Unknown). */
    uint64_t maxNodes = 20000;
    /** Deadline the proof work is charged to (may be null). */
    core::CancelToken *cancel = nullptr;
};

/**
 * Decide  sys ⟹ goal >= 0  over integer assignments of the variables
 * with the parameters universally quantified (they are eliminated like
 * variables, so a proof covers every parameter value).
 */
ProofResult proveImplies(const std::vector<SymConstraint> &sys,
                         const SymConstraint &goal,
                         const ProverOptions &opts = {});

/** Outcome of one whole symbolic check. */
struct SymbolicVerdict
{
    bool passed = false;
    std::string detail;
};

/** Check 1: emitted scan set == T(source space), for all parameters. */
SymbolicVerdict checkLatticeSymbolic(const ir::Program &prog,
                                     const xform::TransformedNest &nest,
                                     const ProverOptions &opts = {});

/** Check 2: T·d lex-positive and the scan order premise re-derived. */
SymbolicVerdict
checkDependencesSymbolic(const ir::Program &prog,
                         const xform::TransformedNest &nest,
                         const IntMatrix &dep_matrix,
                         const ProverOptions &opts = {});

/** Check 3: emitted body == source body composed through T⁻¹. */
SymbolicVerdict checkBodySymbolic(const ir::Program &prog,
                                  const xform::TransformedNest &nest,
                                  const ProverOptions &opts = {});

/**
 * Closed-form symbolic trip count of the source nest over its
 * parameters, via abstract acceleration (Faulhaber summation level by
 * level, innermost first). Exact on the domain where every level is
 * nonempty; std::nullopt when a level has multiple lower or upper
 * bounds (e.g. banded SYR2K), where no polynomial closed form exists.
 */
std::optional<Polynomial> symbolicTripCount(const ir::Program &prog);

} // namespace anc::verify

#endif // ANC_VERIFY_SYMBOLIC_H
