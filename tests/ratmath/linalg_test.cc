/**
 * @file
 * Unit and property tests for exact rational linear algebra.
 */

#include <gtest/gtest.h>

#include <random>

#include "ratmath/linalg.h"
#include "test_util.h"

namespace anc {
namespace {

using testutil::randomIntMatrix;
using testutil::randomInvertibleMatrix;

TEST(Rank, Basics)
{
    EXPECT_EQ(rank(IntMatrix{{1, 0}, {0, 1}}), 2u);
    EXPECT_EQ(rank(IntMatrix{{1, 2}, {2, 4}}), 1u);
    EXPECT_EQ(rank(IntMatrix(3, 3)), 0u);
    // The paper's Section 5 example: row 2 is twice row 1.
    IntMatrix x{{1, 1, -1, 0}, {2, 2, -2, 0}, {0, 0, 1, -1}};
    EXPECT_EQ(rank(x), 2u);
}

TEST(Determinant, Basics)
{
    EXPECT_EQ(determinant(IntMatrix{{2, 4}, {1, 5}}), 6);
    EXPECT_EQ(determinant(IntMatrix{{1, 2}, {2, 4}}), 0);
    EXPECT_EQ(determinant(IntMatrix::identity(4)), 1);
    // Paper Section 4: the SYR2K-like data access matrix is invertible.
    IntMatrix x{{-1, 1, 0}, {0, 1, 1}, {1, 0, 0}};
    EXPECT_EQ(determinant(x), 1);
    EXPECT_TRUE(isInvertible(x));
    EXPECT_TRUE(isUnimodular(x));
    EXPECT_FALSE(isUnimodular(IntMatrix{{2, 0}, {0, 1}}));
    EXPECT_THROW(determinant(toRational(IntMatrix(2, 3))), InternalError);
}

TEST(Determinant, SwapChangesSign)
{
    IntMatrix a{{0, 1}, {1, 0}};
    EXPECT_EQ(determinant(a), -1);
}

TEST(Inverse, KnownInverse)
{
    RatMatrix m = toRational(IntMatrix{{2, 4}, {1, 5}});
    RatMatrix inv = inverse(m);
    EXPECT_EQ(inv(0, 0), Rational(5, 6));
    EXPECT_EQ(inv(0, 1), Rational(-2, 3));
    EXPECT_EQ(inv(1, 0), Rational(-1, 6));
    EXPECT_EQ(inv(1, 1), Rational(1, 3));
}

TEST(Inverse, SingularMatrix)
{
    RatMatrix s = toRational(IntMatrix{{1, 2}, {2, 4}});
    EXPECT_FALSE(tryInverse(s).has_value());
    EXPECT_THROW(inverse(s), MathError);
}

TEST(Inverse, RandomizedRoundTrip)
{
    std::mt19937 rng(12345);
    for (int trial = 0; trial < 50; ++trial) {
        size_t n = 1 + trial % 5;
        IntMatrix m = randomInvertibleMatrix(rng, n);
        RatMatrix inv = inverse(m);
        EXPECT_EQ(toRational(m) * inv, toRational(IntMatrix::identity(n)));
        EXPECT_EQ(inv * toRational(m), toRational(IntMatrix::identity(n)));
    }
}

TEST(FirstRowBasisTest, PaperSection5Example)
{
    // Rows 1 and 3 form the basis; row 2 = 2 * row 1 is discarded.
    IntMatrix x{{1, 1, -1, 0}, {2, 2, -2, 0}, {0, 0, 1, -1}};
    EXPECT_EQ(firstRowBasis(x), (std::vector<size_t>{0, 2}));
}

TEST(FirstRowBasisTest, PrefersEarlierRows)
{
    // Both orderings are rank 2, but the *first* basis must keep row 0.
    IntMatrix a{{1, 0}, {2, 0}, {0, 1}};
    EXPECT_EQ(firstRowBasis(a), (std::vector<size_t>{0, 2}));
    IntMatrix b{{2, 0}, {1, 0}, {0, 1}};
    EXPECT_EQ(firstRowBasis(b), (std::vector<size_t>{0, 2}));
}

TEST(FirstRowBasisTest, ZeroRowsSkipped)
{
    IntMatrix a{{0, 0}, {1, 2}, {2, 4}, {0, 1}};
    EXPECT_EQ(firstRowBasis(a), (std::vector<size_t>{1, 3}));
}

TEST(FirstRowBasisTest, RandomizedGreedyInvariant)
{
    std::mt19937 rng(99);
    for (int trial = 0; trial < 40; ++trial) {
        IntMatrix m = randomIntMatrix(rng, 5, 3, -2, 2);
        auto kept = firstRowBasis(m);
        EXPECT_EQ(kept.size(), rank(m));
        // Greedy invariant: each kept row increases the rank of the
        // prefix; each discarded row does not.
        RatMatrix prefix(0, 3);
        size_t ki = 0;
        for (size_t i = 0; i < m.rows(); ++i) {
            RatMatrix with = prefix;
            with.appendRow(toRational(m).row(i));
            bool keeps = ki < kept.size() && kept[ki] == i;
            if (keeps) {
                EXPECT_EQ(rank(with), prefix.rows() + 1);
                prefix = with;
                ++ki;
            } else {
                EXPECT_EQ(rank(with), prefix.rows());
            }
        }
    }
}

TEST(FirstColumnBasisTest, PaperPaddingExample)
{
    // Section 5.2: columns 1 and 3 (0-based: 0 and 2) are independent.
    IntMatrix b{{1, 1, -1, 0}, {0, 0, 1, -1}};
    EXPECT_EQ(firstColumnBasis(b), (std::vector<size_t>{0, 2}));
}

TEST(SolveTest, ConsistentAndInconsistent)
{
    RatMatrix a = toRational(IntMatrix{{1, 1}, {1, -1}});
    auto x = solve(a, RatVec{Rational(3), Rational(1)});
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ((*x)[0], Rational(2));
    EXPECT_EQ((*x)[1], Rational(1));

    RatMatrix s = toRational(IntMatrix{{1, 1}, {2, 2}});
    EXPECT_FALSE(solve(s, RatVec{Rational(1), Rational(3)}).has_value());
    ASSERT_TRUE(solve(s, RatVec{Rational(1), Rational(2)}).has_value());
}

TEST(SolveTest, UnderdeterminedReturnsSomeSolution)
{
    RatMatrix a = toRational(IntMatrix{{1, 2, 3}});
    auto x = solve(a, RatVec{Rational(6)});
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(dot(a.row(0), *x), Rational(6));
}

TEST(NullspaceTest, DimensionsAndMembership)
{
    RatMatrix a = toRational(IntMatrix{{1, 1, -1, 0}, {0, 0, 1, -1}});
    RatMatrix ns = nullspaceBasis(a);
    EXPECT_EQ(ns.cols(), 2u);
    for (size_t c = 0; c < ns.cols(); ++c) {
        RatVec v = ns.column(c);
        RatVec av = a.apply(v);
        for (const Rational &x : av)
            EXPECT_TRUE(x.isZero());
    }
    // Full-rank square matrix: trivial null space.
    EXPECT_EQ(nullspaceBasis(toRational(IntMatrix{{1, 0}, {0, 1}})).cols(),
              0u);
}

TEST(NullspaceTest, RandomizedRankNullity)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        IntMatrix m = randomIntMatrix(rng, 3, 5, -2, 2);
        RatMatrix ns = nullspaceBasis(toRational(m));
        EXPECT_EQ(ns.cols(), 5u - rank(m));
        for (size_t c = 0; c < ns.cols(); ++c) {
            RatVec av = toRational(m).apply(ns.column(c));
            for (const Rational &x : av)
                EXPECT_TRUE(x.isZero());
        }
    }
}

TEST(ScaleToPrimitive, Basics)
{
    RatVec v{Rational(1, 2), Rational(1, 3), Rational(0)};
    EXPECT_EQ(scaleToPrimitiveIntegers(v), (IntVec{3, 2, 0}));

    RatVec w{Rational(2), Rational(4)};
    EXPECT_EQ(scaleToPrimitiveIntegers(w), (IntVec{1, 2}));

    RatVec neg{Rational(-1, 2), Rational(1, 4)};
    EXPECT_EQ(scaleToPrimitiveIntegers(neg), (IntVec{-2, 1}));

    EXPECT_THROW(scaleToPrimitiveIntegers(RatVec{Rational(0)}), MathError);
}

} // namespace
} // namespace anc
