/**
 * @file
 * The hardened compilation service behind the `ancd` batch driver.
 *
 * A Service owns one canonicalized plan cache and serves compile
 * requests through a per-request fault boundary: every request ends in
 * exactly one of five verdicts --
 *
 *   Compiled          fresh full-tier compilation
 *   Cached            served from the plan cache (any tier)
 *   Degraded          fresh compilation, but a lower ladder tier (or a
 *                     conservative-fallback transformation)
 *   Shed              refused: malformed input, admission-control
 *                     budget overrun, queue overflow, or an unservable
 *                     poisoned request
 *   DeadlineExceeded  the cooperative step budget expired
 *
 * -- and always carries structured core::Diagnostics explaining why.
 * No exception ever escapes serve()/serveSource()/runBatch(): one
 * poisoned request cannot take down a batch (the resilience suite
 * proves this by sweeping the fault injector over every arithmetic
 * site reachable from the service entry points).
 *
 * Since the symbolic-validation rework, the service is also
 * validate-or-degrade by default: every freshly compiled plan is run
 * through translation validation (a symbolic proof covering all
 * parameter values, see verify/symbolic.h) before it is cached, a
 * rung whose plan fails to prove is degraded away inside
 * compileResilient, and the verdict travels with the response
 * (Response::validated) and the metrics (svc.validate.*). Validation
 * work is charged to the same per-request step budget as compilation,
 * so deadlines and replays stay deterministic.
 *
 * Requests are keyed by svc::planKey over the *canonical* form, so
 * loop-reversed, lower-bound-shifted, scale-rendered, or renamed
 * variants of the same nest all hit the same cache line; the service
 * compiles the canonical program and serves that plan.
 *
 * Transient mid-compile faults (injected or real arithmetic failures
 * that escape even the resilient ladder) are retried with exponential
 * backoff; backoff is charged to the request's deterministic step
 * budget, so retry behavior -- like every other verdict -- reproduces
 * bit-for-bit for a fixed (stream, budgets, fault schedule).
 */

#ifndef ANC_SVC_SERVICE_H
#define ANC_SVC_SERVICE_H

#include <string>
#include <vector>

#include "core/compiler.h"
#include "dsl/parser.h"
#include "obs/metrics.h"
#include "svc/canonical.h"
#include "svc/event_log.h"
#include "svc/plan_cache.h"

namespace anc::svc {

/** How a request ended. Every request gets exactly one. */
enum class Verdict
{
    Compiled,
    Cached,
    Degraded,
    Shed,
    DeadlineExceeded,
};

const char *verdictName(Verdict v);

/**
 * The service's compile defaults: translation validation is ON. Every
 * freshly compiled plan is proven equivalent to its source program
 * (symbolically, for all parameter values; see verify/symbolic.h)
 * before it is cached or served, and a plan that fails validation at
 * some ladder tier is degraded to a tier that proves, never served
 * as-is. Clear `base.validate` (ancd: --no-validate) to opt out.
 */
inline core::ResilientOptions
validatedCompileDefaults()
{
    core::ResilientOptions r;
    r.base.validate = true;
    return r;
}

/** Configuration for a Service. */
struct ServiceOptions
{
    /** Target machine for every compilation (part of the plan key). */
    numa::MachineParams machine = numa::MachineParams::butterflyGP1000();
    /** Per-request compile options; validation defaults ON (see
     * validatedCompileDefaults). `base.cancel` is overwritten by the
     * service with the request's own deadline token. */
    core::ResilientOptions compile = validatedCompileDefaults();
    /** Plan-cache byte budget (0 caches nothing). */
    size_t cacheBytes = size_t(4) << 20;
    /** Per-request step budget (0 = no deadline). */
    uint64_t deadlineSteps = 0;
    /** Admission control: shed sources larger than this (0 = no limit). */
    size_t maxProgramBytes = 0;
    /** Admission control: runBatch sheds requests beyond this queue
     * depth (0 = no limit). */
    size_t queueLimit = 0;
    /** Transient-fault retries per request after the first attempt. */
    int maxRetries = 2;
    /** Backoff charged to the step budget before retry attempt k
     * (doubling: backoff << k). */
    uint64_t retryBackoffSteps = 16;
    /**
     * Structured lifecycle log (null = off; ancd: --log). When set, the
     * service emits one JSONL event per lifecycle step of every request
     * -- admission, parse, canonicalize, cache lookup, compile,
     * validation, retries, verdict -- all correlated by the request id.
     * The log carries sequence numbers, never timestamps, so it is as
     * deterministic as the verdicts themselves. Not owned.
     */
    EventLog *events = nullptr;
};

/** The outcome of one request. */
struct Response
{
    std::string id;
    Verdict verdict = Verdict::Shed;
    /** Plan key; set once canonicalization succeeded. */
    PlanKey key{};
    bool hasKey = false;
    /** Ladder tier of the served plan ("" when nothing was served). */
    std::string tier;
    /** True when the served plan gave up some optimization. */
    bool degradedPlan = false;
    /** True when the served plan carries a passing translation-
     * validation report (fresh compilations: validated before caching;
     * cache hits: the verdict stored with the entry). False when
     * nothing was served or validation was explicitly disabled --
     * there is no "skipped" third state. */
    bool validated = false;
    /** Why the request ended the way it did (always at least one entry
     * for non-Compiled verdicts). */
    core::Diagnostics diagnostics;
    /** Deterministic steps spent (canonicalize + pipeline + validation
     * + backoff). */
    uint64_t steps = 0;
    /** Retry attempts consumed by transient faults. */
    int retries = 0;

    /** One stable JSON object: {"id", "verdict", "key", "tier",
     * "validated", "steps", "retries", "diagnostics"} -- always all
     * keys, in that order. */
    std::string renderJson() const;
};

/** One request parsed out of a batch file. */
struct BatchRequest
{
    std::string id;     //!< "# id: NAME" comment, or "r<index>"
    std::string source; //!< DSL source text
    int line = -1;      //!< 1-based first line in the batch file
};

/**
 * Split a batch file into requests. Format: DSL programs separated by
 * lines whose first non-space character run is `---`; a comment line
 * `# id: NAME` anywhere in a chunk names the request. Blank chunks are
 * skipped. Never throws on malformed text -- malformed *programs* are
 * the service's job to shed, one by one.
 */
std::vector<BatchRequest> parseBatch(const std::string &text);

class Service
{
  public:
    explicit Service(ServiceOptions opts);

    /** Serve one already-parsed program. Never throws. */
    Response serve(const std::string &id, const ir::Program &prog);

    /** Parse (with recovery) then serve. Parse failure => Shed with one
     * diagnostic per recovered error. Never throws. */
    Response serveSource(const std::string &id, const std::string &source);

    /** Serve a whole batch with queue-limit admission control: requests
     * beyond ServiceOptions::queueLimit are shed up front. Never
     * throws; responses are in request order. */
    std::vector<Response> runBatch(const std::vector<BatchRequest> &batch);

    const PlanCache &cache() const { return cache_; }
    const ServiceOptions &options() const { return opts_; }

    /**
     * Crash recovery: replay a prior run's durable cache journal (see
     * PlanCache::durableJournalText) and adopt its verified history,
     * so counters and the determinism witness continue across a
     * restart. Call before serving traffic. Returns the replay record
     * (how many events were restored, rejected, or torn).
     */
    JournalReplay restoreCacheJournal(const std::string &durableText);

    uint64_t requestsServed() const { return requests_; }
    /** Requests that ended with the given verdict so far. */
    uint64_t verdictCount(Verdict v) const { return verdicts_[size_t(v)]; }
    /** Fresh compilations whose served plan carried a passing
     * validation report. */
    uint64_t validationsPassed() const { return validatePassed_; }
    /** Fresh compilations served although validation did not pass
     * (only reachable when compile.base.validate is cleared -- a
     * validation failure otherwise degrades or sheds). */
    uint64_t validationsFailed() const { return validateFailed_; }
    /** Fresh compilations served with validation explicitly off. */
    uint64_t validationsOff() const { return validateOff_; }

    /** Fill svc.* request counters (including svc.validate.*), the
     * svc.steps histogram, and the cache's svc.cache.* counters into a
     * registry. */
    void fillMetrics(obs::MetricsRegistry &m) const;

  private:
    Response serveGuarded(const std::string &id, const ir::Program &prog);
    void finish(Response &r);
    /** Emit one lifecycle event when ServiceOptions::events is set. */
    void event(const std::string &request, const char *name,
               std::vector<EventLog::Field> fields = {});

    ServiceOptions opts_;
    PlanCache cache_;
    uint64_t requests_ = 0;
    uint64_t retriesTotal_ = 0;
    uint64_t verdicts_[5] = {};
    uint64_t validatePassed_ = 0, validateFailed_ = 0, validateOff_ = 0;
    obs::Histogram stepsHist_;
};

} // namespace anc::svc

#endif // ANC_SVC_SERVICE_H
