/**
 * @file
 * Plan-explainability tests (core::explain, obs::ExplainRecord).
 *
 * The record is a pure function of a finished Compilation, so the
 * contract is: the trail names every access row exactly once with a
 * verdict from the fixed vocabulary, the reported plan matches the
 * compiled plan field by field, the JSON rendering has a fixed key
 * set and order for every input, and degraded or identity compiles
 * still produce a well-formed (possibly partial) record.
 */

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "ir/gallery.h"
#include "ratmath/fault.h"

namespace anc::core {
namespace {

bool
validVerdict(const std::string &v)
{
    return v == "kept" || v == "reversed" || v == "dropped" ||
           v == "unused";
}

/** The JSON keys every record must present, in this order. */
void
expectStableJsonShape(const obs::ExplainRecord &e)
{
    std::string json = e.renderJson();
    const char *keys[] = {"\"tier\"",        "\"degraded\"",
                          "\"partial\"",     "\"transform\"",
                          "\"unimodular\"",  "\"plan\"",
                          "\"scheme\"",      "\"rationale\"",
                          "\"tieBreak\"",    "\"outerParallel\"",
                          "\"hoists\"",      "\"search\"",
                          "\"ran\"",         "\"improved\"",
                          "\"enumerated\"",  "\"scored\"",
                          "\"pruned\"",      "\"processorSweep\"",
                          "\"winnerOrigin\"", "\"trail\"",
                          "\"candidates\"",  "\"refs\"",
                          "\"notes\""};
    size_t pos = 0;
    for (const char *k : keys) {
        size_t at = json.find(k, pos);
        ASSERT_NE(at, std::string::npos) << k << " missing in " << json;
        pos = at;
    }
    // Rendering is pure.
    EXPECT_EQ(json, e.renderJson());
}

TEST(ExplainTest, GemmTrailNamesEveryAccessRowOnce)
{
    Compilation c = compile(ir::gallery::gemm());
    obs::ExplainRecord e = explain(c);
    EXPECT_EQ(e.tier, "full");
    EXPECT_FALSE(e.degraded);
    EXPECT_FALSE(e.partial);
    EXPECT_FALSE(e.transform.empty());

    ASSERT_FALSE(e.candidates.empty());
    // Access rows first, in importance order, each exactly once; then
    // only synthesized rows (accessRow == -1).
    size_t accessRows = 0;
    bool synth = false;
    for (const obs::ExplainCandidate &cand : e.candidates) {
        EXPECT_TRUE(validVerdict(cand.verdict)) << cand.verdict;
        if (cand.accessRow >= 0) {
            EXPECT_FALSE(synth) << "access row after synthesized row";
            EXPECT_EQ(cand.accessRow, Int(accessRows));
            ++accessRows;
            EXPECT_FALSE(cand.origin.empty());
        } else {
            synth = true;
            EXPECT_EQ(cand.stage, "padding");
        }
    }
    EXPECT_EQ(accessRows, c.normalization.access.rows.size());

    // Kept candidates (access + synthesized) fill T exactly.
    size_t keptRows = 0;
    for (const obs::ExplainCandidate &cand : e.candidates)
        keptRows += cand.verdict == "kept" || cand.verdict == "reversed";
    EXPECT_EQ(keptRows, c.normalization.transform.rows());

    expectStableJsonShape(e);
}

TEST(ExplainTest, ReportedPlanMatchesCompiledPlan)
{
    for (auto make : {ir::gallery::gemm, ir::gallery::syr2kBanded,
                      ir::gallery::figure1, ir::gallery::gemv,
                      ir::gallery::jacobi2d}) {
        Compilation c = compile(make());
        obs::ExplainRecord e = explain(c);
        const char *schemes[] = {"round-robin", "owner-wrapped",
                                 "owner-blocked", "owner-block2d"};
        EXPECT_EQ(e.scheme, schemes[size_t(c.plan.scheme)]);
        EXPECT_EQ(e.planRationale, c.plan.rationale);
        EXPECT_EQ(e.tieBreak, c.plan.tieBreak);
        EXPECT_EQ(e.outerParallel, c.plan.outerParallel);
        EXPECT_EQ(e.hoists, c.plan.hoists.size());
        expectStableJsonShape(e);
    }
}

TEST(ExplainTest, TieBreakNamesTheWinnerWhenCandidatesCompete)
{
    // GEMM has three aligned candidates (write C, reads A and B); the
    // trail must say which won and by what rule.
    Compilation c = compile(ir::gallery::gemm());
    obs::ExplainRecord e = explain(c);
    EXPECT_NE(e.tieBreak.find("picked"), std::string::npos) << e.tieBreak;
    EXPECT_NE(e.tieBreak.find(" of "), std::string::npos) << e.tieBreak;
}

TEST(ExplainTest, RefScoresCoverEveryReference)
{
    Compilation c = compile(ir::gallery::gemm());
    obs::ExplainRecord e = explain(c);
    // gemm: one statement, write C + reads C, A, B.
    ASSERT_EQ(e.refs.size(), 4u);
    size_t writes = 0, hoisted = 0;
    for (const obs::ExplainRefScore &s : e.refs) {
        EXPECT_FALSE(s.ref.empty());
        EXPECT_FALSE(s.strides.empty());
        EXPECT_FALSE(s.verdict.empty());
        writes += s.ref.find("write") != std::string::npos;
        hoisted += s.verdict.find("block transfer") != std::string::npos;
    }
    EXPECT_EQ(writes, 1u);
    EXPECT_EQ(hoisted, c.plan.hoists.size());
}

TEST(ExplainTest, IdentityCompileIsWellFormed)
{
    CompileOptions identity;
    identity.identityTransform = true;
    Compilation c = compile(ir::gallery::gemm(), identity);
    obs::ExplainRecord e = explain(c);
    for (const obs::ExplainCandidate &cand : e.candidates)
        EXPECT_TRUE(validVerdict(cand.verdict)) << cand.verdict;
    EXPECT_EQ(e.scheme, "round-robin");
    expectStableJsonShape(e);
    EXPECT_FALSE(e.renderText().empty());
}

TEST(ExplainTest, DegradedLadderRungsStillProduceRecords)
{
    // Sweep the fault injector over the first checked-arithmetic sites
    // of a resilient compile: whatever rung each fault lands the
    // compile on, explain() must produce a well-formed record -- it
    // must never be the thing that crashes a compile recovery saved.
    bool sawDegraded = false, sawUnused = false;
    ir::Program prog = ir::gallery::gemm();
    for (uint64_t k = 1; k <= 60; ++k) {
        fault::armAt(k);
        Compilation c;
        ASSERT_NO_THROW(c = compileResilient(prog)) << "fault #" << k;
        fault::disarm();
        obs::ExplainRecord e;
        ASSERT_NO_THROW(e = explain(c)) << "fault #" << k;
        EXPECT_TRUE(validVerdict(e.candidates.empty()
                                     ? std::string("kept")
                                     : e.candidates[0].verdict));
        expectStableJsonShape(e);
        EXPECT_FALSE(e.renderText().empty());
        if (c.degraded()) {
            sawDegraded = true;
            EXPECT_TRUE(e.degraded) << "fault #" << k;
        }
        if (c.tier == CompileTier::Identity) {
            EXPECT_TRUE(e.partial) << "fault #" << k;
            for (const obs::ExplainCandidate &cand : e.candidates)
                sawUnused |= cand.verdict == "unused";
        }
    }
    EXPECT_TRUE(sawDegraded)
        << "sweep never degraded: widen the fault range";
    (void)sawUnused; // identity rung may or may not be reached early
}

TEST(ExplainTest, TextReportMentionsTheDecisions)
{
    Compilation c = compile(ir::gallery::gemm());
    std::string text = explain(c).renderText();
    EXPECT_NE(text.find("plan explanation"), std::string::npos) << text;
    EXPECT_NE(text.find("tier=full"), std::string::npos) << text;
    EXPECT_NE(text.find("candidate"), std::string::npos) << text;
    EXPECT_NE(text.find("tie-break"), std::string::npos) << text;
}

} // namespace
} // namespace anc::core
