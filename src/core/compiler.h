/**
 * @file
 * The access-normalizing NUMA compiler: the library's top-level API.
 *
 * compile() runs the paper's whole pipeline on a program --
 * dependence analysis, access normalization (Sections 2-6), NUMA code
 * generation planning (Section 7) -- and returns everything a client
 * needs: the transformation record, the executable transformed nest,
 * the SPMD plan, emitted node code, and helpers to simulate the result
 * on a modeled NUMA machine (Section 8).
 */

#ifndef ANC_CORE_COMPILER_H
#define ANC_CORE_COMPILER_H

#include <string>

#include "codegen/emit_c.h"
#include "codegen/planner.h"
#include "codegen/strength.h"
#include "core/cancel.h"
#include "core/diagnostics.h"
#include "numa/simulator.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "verify/verify.h"
#include "xform/normalize.h"
#include "xform/search.h"

namespace anc::core {

/** Options for one compilation. */
struct CompileOptions
{
    xform::NormalizeOptions normalize;
    /** Skip restructuring entirely: compile the original nest with
     * round-robin outer distribution (the paper's untransformed
     * "gemm"/"syr2k" baselines). */
    bool identityTransform = false;
    /** Run translation validation (verify::validate) on the result.
     * Under compile(), a validation failure throws InternalError; under
     * compileResilient(), it degrades the ladder one tier, making the
     * ladder self-checking. The report lands in
     * Compilation::validation either way. */
    bool validate = false;
    /**
     * Simulator-scored plan search (xform/search.h): when enabled, the
     * Full tier enumerates legal alternatives to the heuristic plan,
     * scores the survivors on the modeled machine, and adopts a
     * symbolically validated winner that beats the heuristic at every
     * swept machine size. Search failure always falls back to the
     * heuristic plan; it never degrades the tier and never crashes a
     * compile. All fields except hostThreads affect the selected plan
     * and are part of svc::planKey.
     */
    xform::SearchOptions search;
    /** Trace sink for wall-clock compiler-phase spans (null = off).
     * Phase wall times land in Compilation::phaseTimes regardless. */
    obs::Trace *trace = nullptr;
    /** Process track for the phase spans (see obs::Trace::process). */
    int64_t tracePid = 0;
    /**
     * Cooperative deadline (null = none): the pipeline charges one step
     * at every phase boundary it crosses, and an exhausted budget
     * throws DeadlineExceeded through every recovery boundary (it is
     * not an anc::Error, so compileResilient() cannot degrade past it).
     * The step count for a given (program, options, fault schedule) is
     * deterministic; see core/cancel.h.
     */
    CancelToken *cancel = nullptr;
};

/**
 * The rung of compileResilient()'s degradation ladder a compilation
 * came out of. Lower rungs give up optimization, never correctness.
 */
enum class CompileTier
{
    Full,       //!< full access normalization (scaling, HNF strides)
    Unimodular, //!< unimodular-only transformation (Banerjee's special
                //!< case: no scaling, no stride synthesis)
    Identity,   //!< original nest, round-robin outer distribution
};

const char *tierName(CompileTier t);

/** The result of compiling one program. */
struct Compilation
{
    ir::Program program;
    xform::NormalizeResult normalization;
    numa::ExecutionPlan plan;
    std::string nodeProgram; //!< emitted SPMD pseudo-code
    /** Induction plans for the divisions a non-unimodular T introduces
     * (empty for unimodular transformations). When non-empty,
     * nodeProgram is emitted in strength-reduced form. */
    std::vector<codegen::InductionPlan> strengthReduction;

    /** Wall-clock time of every pipeline phase that ran, in execution
     * order, annotated with the degradation-ladder rung it ran under.
     * Rungs that failed partway leave their phases here too: the record
     * answers "where did the compile time go", including time spent on
     * work that was then thrown away. */
    std::vector<obs::PhaseTime> phaseTimes;

    /** Ladder rung this result came out of (Full for plain compile()). */
    CompileTier tier = CompileTier::Full;
    /** What was given up and why, with stage provenance. */
    Diagnostics diagnostics;
    /** True when the differential interpreter check ran and passed. */
    bool differentialChecked = false;
    /** Plan-search record (SearchResult::ran is false when the search
     * was disabled, skipped, or failed before enumerating). When the
     * search improved on the heuristic, `normalization` and `plan`
     * above already hold the winner. */
    xform::SearchResult search;
    /** Translation-validation verdict (empty checks list when
     * CompileOptions::validate was off). */
    verify::ValidationReport validation;
    /** True when translation validation ran and every check passed
     * (there is no skipped verdict: a plan is validated or it is not). */
    bool validated = false;

    /** True when some optimization was given up: a lower ladder rung
     * was used, or normalization conservatively fell back to the
     * identity transformation. */
    bool
    degraded() const
    {
        return tier != CompileTier::Full ||
               normalization.conservativeFallback;
    }

    const xform::TransformedNest &nest() const
    {
        return *normalization.nest;
    }

    /** Full human-readable compilation report. */
    std::string report() const;
};

/** Run the full pipeline. */
Compilation compile(ir::Program prog, const CompileOptions &opts = {});

/** Options for resilient compilation. */
struct ResilientOptions
{
    CompileOptions base;
    /**
     * Verify every degraded result by interpretation: run the original
     * program and the emitted nest on a small parameter binding and
     * compare all array contents bit-for-bit. A mismatch fails the rung
     * (the ladder continues downward); an infeasible binding (arrays
     * too large, no in-range binding found) records a note and skips.
     */
    bool differentialCheck = true;
    /** Per-array element cap for the differential check. */
    Int differentialMaxElements = 1 << 16;
    /** Parameter values tried (all parameters get the same value). */
    std::vector<Int> differentialParamCandidates = {4, 3, 2, 6, 1};
    /** Knobs for the translation-validation post-pass (only consulted
     * when base.validate is set). */
    verify::ValidateOptions validation;
};

/**
 * Never-crash compilation: walk the degradation ladder (full access
 * normalization -> unimodular-only -> identity transform), wrapping
 * every pipeline stage in a recovery boundary. Arithmetic overflow,
 * math errors, and internal invariant violations degrade the result to
 * a lower tier instead of escaping; the returned Compilation records
 * the tier reached and a diagnostic for everything given up.
 *
 * UserError (malformed input) still propagates: bad programs are the
 * caller's to fix, and the parser rejects them with line information.
 * The guarantee is: any program that validates compiles to a correct
 * plan, or -- only if even the identity rung fails, which no
 * non-adversarial input reaches -- throws InternalError carrying the
 * full diagnostic report.
 */
Compilation compileResilient(ir::Program prog,
                             const ResilientOptions &opts = {});

/**
 * Build the plan-explainability record for a finished compilation: the
 * candidate-basis trail (what BasisMatrix kept, what LegalBasis
 * reversed or rejected and which dependence killed it, what padding
 * completed T), the partition tie-break, and per-reference stride
 * scores under the chosen T. Pure function of the Compilation; degraded
 * results yield a well-formed (possibly partial) record.
 */
obs::ExplainRecord explain(const Compilation &c);

/** Simulate a compilation on a modeled NUMA machine. */
numa::SimStats simulate(const Compilation &c, const numa::SimOptions &opts,
                        const ir::Bindings &binds);

/** Sequential (one processor, all local) time for speedup baselines. */
double sequentialTime(const Compilation &c,
                      const numa::MachineParams &machine,
                      const IntVec &params);

} // namespace anc::core

#endif // ANC_CORE_COMPILER_H
