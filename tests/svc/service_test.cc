/**
 * @file
 * The service's hard guarantees: every request ends in exactly one of
 * the five verdicts, no exception ever escapes the entry points (the
 * fault injector is swept over every checked-arithmetic site reachable
 * from serve()), admission-control refusals name both the limit and the
 * observed value, and a batch replay -- including one with an armed
 * fault schedule -- reproduces verdicts and cache journal bit for bit.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/gallery.h"
#include "ratmath/fault.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace anc::svc {
namespace {

const char *kGemmSource = R"(param N
array C(N, N) distribute wrapped(1)
array A(N, N) distribute wrapped(1)
array B(N, N) distribute wrapped(1)

for i = 0, N-1
  for j = 0, N-1
    for k = 0, N-1
      C[i, j] = C[i, j] + A[i, k] * B[k, j]
)";

const char *kGarbageSource = R"(param N
array A(N
for i = 0,
  A[i] ===
)";

class ServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::disarm(); }
};

TEST_F(ServiceTest, FreshCompileThenCacheHit)
{
    Service s(ServiceOptions{});
    Response first = s.serve("a", ir::gallery::gemm());
    EXPECT_EQ(first.verdict, Verdict::Compiled);
    EXPECT_TRUE(first.hasKey);
    EXPECT_FALSE(first.tier.empty());
    EXPECT_FALSE(first.degradedPlan);

    // Validation is on by default: the fresh plan was proven before
    // caching, and the cached hit carries the stored verdict.
    EXPECT_TRUE(first.validated);

    Response second = s.serve("b", ir::gallery::gemm());
    EXPECT_EQ(second.verdict, Verdict::Cached);
    EXPECT_EQ(second.key, first.key);
    EXPECT_EQ(second.tier, first.tier);
    EXPECT_TRUE(second.validated);
    EXPECT_EQ(s.cache().hits(), 1u);
    EXPECT_EQ(s.verdictCount(Verdict::Compiled), 1u);
    EXPECT_EQ(s.verdictCount(Verdict::Cached), 1u);
    EXPECT_EQ(s.validationsPassed(), 1u);
    EXPECT_EQ(s.validationsFailed(), 0u);
    EXPECT_EQ(s.validationsOff(), 0u);
}

TEST_F(ServiceTest, NoValidateOptOutIsExplicitNeverSkipped)
{
    // Opting out of validation is a configuration, not a "skipped"
    // verdict: the response says unvalidated, and the svc.validate.off
    // counter records that the operator chose this.
    ServiceOptions o;
    o.compile.base.validate = false;
    Service s(o);
    Response r = s.serve("a", ir::gallery::gemm());
    EXPECT_EQ(r.verdict, Verdict::Compiled);
    EXPECT_FALSE(r.validated);
    EXPECT_EQ(s.validationsOff(), 1u);
    EXPECT_EQ(s.validationsPassed(), 0u);
}

TEST_F(ServiceTest, DegradedPlansAreStillValidated)
{
    // A mid-compile fault degrades the ladder; whatever tier survives
    // must still carry a passing validation report -- the service
    // never serves an unproven plan when validation is on.
    ServiceOptions o;
    o.maxRetries = 0;
    Service s(o);
    fault::armAt(50);
    Response r = s.serve("deg", ir::gallery::gemm());
    fault::disarm();
    ASSERT_EQ(r.verdict, Verdict::Degraded);
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(s.validationsPassed(), 1u);
}

TEST_F(ServiceTest, RestoreCacheJournalContinuesTheWitness)
{
    ServiceOptions o;
    Service first(o);
    first.serve("a", ir::gallery::gemm());
    first.serve("b", ir::gallery::gemm());
    std::string durable = first.cache().durableJournalText();

    // Simulate a crash mid-append: the torn tail is dropped, every
    // complete line is restored, and the restarted service's counters
    // continue from the replayed history.
    Service second(o);
    JournalReplay rep =
        second.restoreCacheJournal(durable.substr(0, durable.size() - 7));
    EXPECT_TRUE(rep.truncatedTail);
    EXPECT_EQ(rep.corruptLines, 0u);
    EXPECT_EQ(second.cache().misses(), first.cache().misses());
    EXPECT_EQ(second.cache().insertions(), first.cache().insertions());
    // The journal the restarted service writes extends the old one.
    second.serve("c", ir::gallery::gemm());
    std::string grown = second.cache().durableJournalText();
    JournalReplay all = PlanCache::replayJournal(grown);
    EXPECT_EQ(all.corruptLines, 0u);
    EXPECT_GT(all.events.size(), rep.events.size());
}

TEST_F(ServiceTest, EquivalentDisguisesHitTheSameCacheLine)
{
    Service s(ServiceOptions{});
    ir::Program gemm = ir::gallery::gemm();
    s.serve("base", gemm);
    EXPECT_EQ(s.serve("ren", renamedVariant(gemm, "z")).verdict,
              Verdict::Cached);
    EXPECT_EQ(s.serve("shift", shiftedVariant(gemm, 3)).verdict,
              Verdict::Cached);
    EXPECT_EQ(s.serve("rev", reversedVariant(gemm, 0)).verdict,
              Verdict::Cached);
    EXPECT_EQ(s.cache().size(), 1u);
}

TEST_F(ServiceTest, GarbageSourceIsShedWithParseDiagnostics)
{
    Service s(ServiceOptions{});
    Response r = s.serveSource("bad", kGarbageSource);
    EXPECT_EQ(r.verdict, Verdict::Shed);
    EXPECT_FALSE(r.hasKey);
    EXPECT_FALSE(r.diagnostics.empty());
    // The batch keeps going: the next request is unaffected.
    EXPECT_EQ(s.serveSource("ok", kGemmSource).verdict,
              Verdict::Compiled);
}

TEST_F(ServiceTest, DeadlineVerdictNamesLimitAndObserved)
{
    ServiceOptions o;
    o.deadlineSteps = 1;
    Service s(o);
    Response r = s.serveSource("slow", kGemmSource);
    EXPECT_EQ(r.verdict, Verdict::DeadlineExceeded);
    EXPECT_GE(r.steps, o.deadlineSteps);
    bool named = false;
    for (const core::Diagnostic &d : r.diagnostics.all())
        if (d.message.find("limit 1") != std::string::npos &&
            d.message.find("observed") != std::string::npos)
            named = true;
    EXPECT_TRUE(named) << r.diagnostics.render();
}

TEST_F(ServiceTest, ProgramSizeOverrunNamesLimitAndObserved)
{
    ServiceOptions o;
    o.maxProgramBytes = 10;
    Service s(o);
    std::string source = kGemmSource;
    Response r = s.serveSource("big", source);
    EXPECT_EQ(r.verdict, Verdict::Shed);
    std::string wantLimit = "limit 10 bytes";
    std::string wantObserved =
        "observed " + std::to_string(source.size()) + " bytes";
    bool named = false;
    for (const core::Diagnostic &d : r.diagnostics.all())
        if (d.message.find(wantLimit) != std::string::npos &&
            d.message.find(wantObserved) != std::string::npos)
            named = true;
    EXPECT_TRUE(named) << r.diagnostics.render();
}

TEST_F(ServiceTest, QueueOverrunNamesLimitAndObserved)
{
    ServiceOptions o;
    o.queueLimit = 2;
    Service s(o);
    std::vector<BatchRequest> batch(4);
    for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].id = "q" + std::to_string(i);
        batch[i].source = kGemmSource;
    }
    std::vector<Response> rs = s.runBatch(batch);
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0].verdict, Verdict::Compiled);
    EXPECT_EQ(rs[1].verdict, Verdict::Cached);
    for (size_t i = 2; i < 4; ++i) {
        EXPECT_EQ(rs[i].verdict, Verdict::Shed);
        bool named = false;
        for (const core::Diagnostic &d : rs[i].diagnostics.all())
            if (d.message.find("queue limit 2 requests") !=
                    std::string::npos &&
                d.message.find("observed 4 requests") != std::string::npos)
                named = true;
        EXPECT_TRUE(named) << rs[i].diagnostics.render();
    }
}

TEST_F(ServiceTest, TransientFaultBeforeCompileIsRetried)
{
    // Checked-arithmetic faults during canonicalization/keying escape
    // as Error (there is no ladder there); the service retries and the
    // one-shot injector lets the second attempt through.
    Service s(ServiceOptions{});
    ir::Program gemm = ir::gallery::gemm();
    fault::armAt(1);
    Response r = s.serve("retry", gemm);
    EXPECT_EQ(r.verdict, Verdict::Compiled);
    EXPECT_GE(r.retries, 1);
    bool warned = false;
    for (const core::Diagnostic &d : r.diagnostics.all())
        if (d.message.find("retrying") != std::string::npos)
            warned = true;
    EXPECT_TRUE(warned) << r.diagnostics.render();
}

TEST_F(ServiceTest, PersistentFaultExhaustsRetriesAndSheds)
{
    ServiceOptions o;
    o.maxRetries = 2;
    Service s(o);
    ir::Program gemm = ir::gallery::gemm();
    // Fault every checked operation: each attempt (and each ladder
    // rung inside compileResilient) fails, so the request is shed
    // after exactly maxRetries retries -- and the process survives.
    std::vector<uint64_t> everything;
    for (uint64_t k = 1; k <= 200000; ++k)
        everything.push_back(k);
    fault::arm(std::move(everything));
    Response r;
    ASSERT_NO_THROW(r = s.serve("doomed", gemm));
    fault::disarm();
    EXPECT_EQ(r.verdict, Verdict::Shed);
    EXPECT_EQ(r.retries, o.maxRetries);
    EXPECT_FALSE(r.diagnostics.empty());
}

TEST_F(ServiceTest, MidCompileFaultDegradesInsteadOfFailing)
{
    ServiceOptions o;
    o.maxRetries = 0;
    Service s(o);
    fault::armAt(50); // known (from the resilience suite) to land in
                      // the full rung of compileResilient
    Response r = s.serve("deg", ir::gallery::gemm());
    fault::disarm();
    EXPECT_EQ(r.verdict, Verdict::Degraded);
    EXPECT_TRUE(r.degradedPlan);
    EXPECT_TRUE(r.hasKey);
}

TEST_F(ServiceTest, EveryFaultSiteLeavesTheServiceStanding)
{
    // The isolation acceptance sweep: arm a fault at EVERY checked
    // operation reachable from a cold serve() and require (a) no
    // exception escapes, (b) the verdict is one of the five, (c) the
    // service still serves the next request normally.
    ir::Program prog = ir::gallery::scalingExample();
    fault::startCounting();
    Service(ServiceOptions{}).serve("count", prog);
    uint64_t total = fault::opCount();
    fault::disarm();
    ASSERT_GT(total, 0u);

    for (uint64_t k = 1; k <= total; ++k) {
        Service s(ServiceOptions{});
        fault::armAt(k);
        Response r;
        ASSERT_NO_THROW(r = s.serve("victim", prog)) << "fault #" << k;
        fault::disarm();
        EXPECT_TRUE(r.verdict == Verdict::Compiled ||
                    r.verdict == Verdict::Cached ||
                    r.verdict == Verdict::Degraded ||
                    r.verdict == Verdict::Shed ||
                    r.verdict == Verdict::DeadlineExceeded)
            << "fault #" << k;
        Response next;
        ASSERT_NO_THROW(next = s.serve("next", prog)) << "fault #" << k;
        EXPECT_TRUE(next.verdict == Verdict::Compiled ||
                    next.verdict == Verdict::Cached)
            << "fault #" << k << " poisoned the following request";
        EXPECT_EQ(s.requestsServed(), 2u);
    }
}

std::string
signature(const std::vector<Response> &rs)
{
    std::string sig;
    for (const Response &r : rs) {
        sig += r.id;
        sig += '=';
        sig += verdictName(r.verdict);
        sig += r.hasKey ? "/" + r.key.hex() : "/-";
        sig += '/';
        sig += std::to_string(r.steps);
        sig += '\n';
    }
    return sig;
}

TEST_F(ServiceTest, BatchReplayIsBitIdentical)
{
    WorkloadOptions w;
    w.seed = 3;
    w.clusters = 3;
    w.requests = 30;
    std::vector<BatchRequest> batch = clusteredWorkload(w);

    ServiceOptions o;
    o.deadlineSteps = 10000;
    Service a(o), b(o);
    std::vector<Response> ra = a.runBatch(batch);
    std::vector<Response> rb = b.runBatch(batch);
    EXPECT_EQ(signature(ra), signature(rb));
    EXPECT_EQ(a.cache().journalText(), b.cache().journalText());
    EXPECT_GT(a.cache().hits(), 0u);
}

TEST_F(ServiceTest, FaultScheduleReplayIsBitIdentical)
{
    // Determinism must hold under injected faults too: the same fault
    // schedule against the same stream reproduces every verdict,
    // retry count, and journal byte.
    WorkloadOptions w;
    w.seed = 5;
    w.clusters = 2;
    w.requests = 12;
    std::vector<BatchRequest> batch = clusteredWorkload(w);

    auto run = [&]() {
        Service s((ServiceOptions()));
        fault::armAt(700);
        std::vector<Response> rs = s.runBatch(batch);
        fault::disarm();
        return signature(rs) + "---\n" + s.cache().journalText();
    };
    EXPECT_EQ(run(), run());
}

TEST_F(ServiceTest, ZeroCacheBudgetStillServes)
{
    ServiceOptions o;
    o.cacheBytes = 0;
    Service s(o);
    EXPECT_EQ(s.serveSource("a", kGemmSource).verdict, Verdict::Compiled);
    EXPECT_EQ(s.serveSource("b", kGemmSource).verdict, Verdict::Compiled);
    EXPECT_EQ(s.cache().hits(), 0u);
    EXPECT_EQ(s.cache().rejections(), 2u);
}

TEST_F(ServiceTest, ParseBatchSplitsNamesAndNumbersRequests)
{
    std::string text = "# id: first\nparam N\narray A(N)\nfor i = 0, "
                       "N-1\n  A[i] = i\n---\n\n   \n---\nparam M\n"
                       "array B(M)\nfor j = 0, M-1\n  B[j] = j\n";
    std::vector<BatchRequest> batch = parseBatch(text);
    ASSERT_EQ(batch.size(), 2u); // the blank chunk is skipped
    EXPECT_EQ(batch[0].id, "first");
    EXPECT_EQ(batch[0].line, 1);
    EXPECT_EQ(batch[1].id, "r1"); // default id numbers by position
    EXPECT_EQ(batch[1].line, 10);
    EXPECT_NE(batch[1].source.find("param M"), std::string::npos);

    EXPECT_TRUE(parseBatch("").empty());
    EXPECT_TRUE(parseBatch("---\n---\n  \n").empty());
    // Indented separator and "# id:" with extra whitespace both parse.
    std::vector<BatchRequest> b2 =
        parseBatch("  #  id:   padded  \nparam N\n  ---  \nparam M\n");
    ASSERT_EQ(b2.size(), 2u);
    EXPECT_EQ(b2[0].id, "padded");
}

TEST_F(ServiceTest, ResponseJsonHasStableShape)
{
    Service s(ServiceOptions{});
    Response r = s.serveSource("q\"1", kGemmSource);
    std::string json = r.renderJson();
    const char *keys[] = {"\"id\"",      "\"verdict\"",   "\"key\"",
                          "\"tier\"",    "\"validated\"", "\"steps\"",
                          "\"retries\"", "\"diagnostics\""};
    size_t pos = 0;
    for (const char *k : keys) {
        size_t at = json.find(k, pos);
        ASSERT_NE(at, std::string::npos) << k << " in " << json;
        pos = at;
    }
    EXPECT_NE(json.find("\"q\\\"1\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"compiled\""), std::string::npos) << json;
}

TEST_F(ServiceTest, MetricsExportCountsEveryVerdict)
{
    ServiceOptions o;
    o.deadlineSteps = 10000;
    Service s(o);
    s.serveSource("a", kGemmSource);
    s.serveSource("b", kGemmSource);
    s.serveSource("c", kGarbageSource);
    obs::MetricsRegistry m;
    s.fillMetrics(m);
    EXPECT_EQ(m.value("svc.requests"), 3u);
    EXPECT_EQ(m.value("svc.compiled"), 1u);
    EXPECT_EQ(m.value("svc.cached"), 1u);
    EXPECT_EQ(m.value("svc.shed"), 1u);
    EXPECT_EQ(m.value("svc.deadline_exceeded"), 0u);
    EXPECT_EQ(m.value("svc.validate.passed"), 1u);
    EXPECT_EQ(m.value("svc.validate.failed"), 0u);
    EXPECT_EQ(m.value("svc.validate.off"), 0u);
    bool hasSteps = false;
    for (const auto &[name, hist] : m.histograms())
        if (name == "svc.steps" && hist.count() == 3)
            hasSteps = true;
    EXPECT_TRUE(hasSteps);
}

TEST_F(ServiceTest, DiagnosticsCarryRequestIdProvenance)
{
    Service s(ServiceOptions{});
    s.serveSource("warm", kGemmSource);
    Response hit = s.serveSource("req-42", kGemmSource);
    ASSERT_EQ(hit.verdict, Verdict::Cached);
    ASSERT_FALSE(hit.diagnostics.empty());
    for (const core::Diagnostic &d : hit.diagnostics.all())
        EXPECT_EQ(d.origin, "req-42") << d.render();
    // The provenance travels into the stable JSON rendering too.
    EXPECT_NE(hit.renderJson().find("\"origin\": \"req-42\""),
              std::string::npos)
        << hit.renderJson();

    Response shed = s.serveSource("bad-7", kGarbageSource);
    ASSERT_EQ(shed.verdict, Verdict::Shed);
    for (const core::Diagnostic &d : shed.diagnostics.all())
        EXPECT_EQ(d.origin, "bad-7") << d.render();
}

TEST_F(ServiceTest, EventLogCorrelatesTheWholeRequestLifecycle)
{
    EventLog log;
    ServiceOptions o;
    o.events = &log;
    Service s(o);
    s.serveSource("fresh", kGemmSource);
    s.serveSource("hit", kGemmSource);
    s.serveSource("bad", kGarbageSource);

    // One verdict event per request, and the fresh/cached/shed paths
    // each leave their distinguishing step records.
    auto count = [&](const std::string &needle) {
        size_t n = 0;
        for (size_t at = log.text().find(needle); at != std::string::npos;
             at = log.text().find(needle, at + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("\"event\": \"verdict\""), 3u) << log.text();
    EXPECT_EQ(count("\"event\": \"admit\""), 3u) << log.text();
    EXPECT_EQ(count("\"request\": \"fresh\""), 7u) << log.text();
    EXPECT_EQ(count("\"request\": \"hit\""), 5u) << log.text();
    EXPECT_EQ(count("\"outcome\": \"miss\""), 1u) << log.text();
    EXPECT_EQ(count("\"outcome\": \"hit\""), 1u) << log.text();
    EXPECT_EQ(count("\"outcome\": \"rejected\""), 1u) << log.text();

    // Every line is one JSON object with the fixed leading keys, and
    // seq numbers the lines 0..n-1 (no timestamps anywhere).
    std::istringstream in(log.text());
    std::string line;
    uint64_t seq = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.find("{\"seq\": " + std::to_string(seq) +
                            ", \"request\": "),
                  0u)
            << line;
        EXPECT_EQ(line.back(), '}') << line;
        ++seq;
    }
    EXPECT_EQ(seq, log.events());

    // Determinism: a fresh service serving the same stream renders the
    // byte-identical log.
    EventLog replay;
    ServiceOptions o2;
    o2.events = &replay;
    Service s2(o2);
    s2.serveSource("fresh", kGemmSource);
    s2.serveSource("hit", kGemmSource);
    s2.serveSource("bad", kGarbageSource);
    EXPECT_EQ(log.text(), replay.text());
}

TEST_F(ServiceTest, EventLogRecordsRetriesAndAdmissionSheds)
{
    EventLog log;
    ServiceOptions o;
    o.events = &log;
    o.maxProgramBytes = 16;
    o.queueLimit = 1;
    Service s(o);
    std::vector<BatchRequest> batch;
    batch.push_back({"big", std::string(64, 'x'), 1});
    batch.push_back({"overflow", kGemmSource, 2});
    s.runBatch(batch);
    EXPECT_NE(log.text().find("\"request\": \"big\", \"event\": \"admit\", "
                              "\"outcome\": \"shed\", \"reason\": "
                              "\"program-size\", \"bytes\": 64"),
              std::string::npos)
        << log.text();
    EXPECT_NE(log.text().find("\"request\": \"overflow\", \"event\": "
                              "\"admit\", \"outcome\": \"shed\", "
                              "\"reason\": \"queue-limit\""),
              std::string::npos)
        << log.text();

    // A transient injected fault leaves a correlated retry event.
    EventLog rlog;
    ServiceOptions ro;
    ro.events = &rlog;
    Service rs(ro);
    fault::armAt(40, fault::Kind::Overflow);
    Response r = rs.serve("flaky", ir::gallery::gemm());
    fault::disarm();
    if (r.retries > 0) {
        EXPECT_NE(rlog.text().find("\"request\": \"flaky\", \"event\": "
                                   "\"retry\", \"attempt\": 1"),
                  std::string::npos)
            << rlog.text();
    }
}

TEST_F(ServiceTest, VerdictNamesAreStable)
{
    EXPECT_STREQ(verdictName(Verdict::Compiled), "compiled");
    EXPECT_STREQ(verdictName(Verdict::Cached), "cached");
    EXPECT_STREQ(verdictName(Verdict::Degraded), "degraded");
    EXPECT_STREQ(verdictName(Verdict::Shed), "shed");
    EXPECT_STREQ(verdictName(Verdict::DeadlineExceeded),
                 "deadline-exceeded");
}

} // namespace
} // namespace anc::svc
